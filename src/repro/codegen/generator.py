"""Specialized kernel source generation.

For each (state size n, target qubit tuple) the generator emits Python
source whose reshape dimensions and einsum subscripts are *constants* —
the numpy analogue of emitting specialized C++ with fixed strides and
unrolled index arithmetic.  Generated sources are inspectable (returned
alongside the compiled function) and cached.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "generate_einsum_kernel",
    "generate_single_qubit_kernel",
    "generated_kernel",
    "clear_kernel_cache",
]

_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

_CACHE: dict[tuple[int, tuple[int, ...]], tuple[Callable, str]] = {}


def _compile(source: str, name: str) -> Callable:
    namespace: dict = {"np": np}
    code = compile(source, f"<generated:{name}>", "exec")
    exec(code, namespace)
    return namespace[name]


def generate_single_qubit_kernel(
    num_qubits: int, qubit: int
) -> tuple[Callable, str]:
    """Emit a slicing kernel for a 1-qubit gate on *qubit*.

    The generated function signature is ``kernel(state, matrix)``; it
    mutates ``state`` in place.  All strides are compile-time constants.
    """
    outer = 1 << (num_qubits - 1 - qubit)
    inner = 1 << qubit
    name = f"kernel_1q_n{num_qubits}_q{qubit}"
    source = f'''\
def {name}(state, matrix):
    """Generated 1-qubit kernel: n={num_qubits}, qubit={qubit} (in place)."""
    view = state.reshape({outer}, 2, {inner})
    m00, m01, m10, m11 = matrix.ravel()
    branch0 = view[:, 0, :].copy()
    branch1 = view[:, 1, :]
    view[:, 0, :] = m00 * branch0 + m01 * branch1
    view[:, 1, :] = m10 * branch0 + m11 * branch1
    return state
'''
    return _compile(source, name), source


def _axis_layout(num_qubits: int, qubits: Sequence[int]) -> list[tuple[str, int]]:
    """State-tensor axes, most-significant first.

    Runs of non-target bits collapse into one axis ("free", size);
    each target bit is its own axis ("target", qubit).
    """
    target = set(qubits)
    axes: list[tuple[str, int]] = []
    run = 0
    for bit in range(num_qubits - 1, -1, -1):
        if bit in target:
            if run:
                axes.append(("free", 1 << run))
                run = 0
            axes.append(("target", bit))
        else:
            run += 1
    if run:
        axes.append(("free", 1 << run))
    return axes


def generate_einsum_kernel(
    num_qubits: int, qubits: Sequence[int]
) -> tuple[Callable, str]:
    """Emit an einsum kernel for a k-qubit gate on *qubits*.

    The state tensor's axis layout (with non-target bit runs collapsed)
    and the einsum subscript string are baked into the source.
    """
    qubits = tuple(qubits)
    k = len(qubits)
    axes = _axis_layout(num_qubits, qubits)
    shape = tuple(
        size if kind == "free" else 2 for kind, size in axes
    )
    # Subscript letters: one per state axis, then fresh row letters.
    state_letters = list(_LETTERS[: len(axes)])
    row_letters = list(_LETTERS[len(axes) : len(axes) + k])
    letter_of_qubit = {
        size: state_letters[i]
        for i, (kind, size) in enumerate(axes)
        if kind == "target"
    }
    # Gate tensor axes: rows (bit k-1 .. 0) then cols (bit k-1 .. 0);
    # matrix bit j corresponds to qubit qubits[j].
    row_letter_of_qubit = {q: row_letters[j] for j, q in enumerate(qubits)}
    gate_sub = "".join(row_letter_of_qubit[qubits[j]] for j in range(k - 1, -1, -1))
    gate_sub += "".join(letter_of_qubit[qubits[j]] for j in range(k - 1, -1, -1))
    state_sub = "".join(state_letters)
    out_sub = "".join(
        row_letter_of_qubit[size] if kind == "target" else state_letters[i]
        for i, (kind, size) in enumerate(axes)
    )
    subscripts = f"{gate_sub},{state_sub}->{out_sub}"
    gate_shape = (2,) * (2 * k)
    qtag = "_".join(map(str, qubits))
    name = f"kernel_{k}q_n{num_qubits}_q{qtag}"
    source = f'''\
def {name}(state, matrix):
    """Generated {k}-qubit einsum kernel: n={num_qubits}, qubits={qubits}."""
    psi = state.reshape{shape!r}
    gate = matrix.reshape{gate_shape!r}
    out = np.einsum("{subscripts}", gate, psi)
    state[:] = out.reshape(-1)
    return state
'''
    return _compile(source, name), source


def generated_kernel(
    num_qubits: int, qubits: Sequence[int]
) -> tuple[Callable, str]:
    """Return (function, source) of the specialized kernel for *qubits*.

    Single-qubit gates get the slicing kernel, larger gates the einsum
    kernel.  Results are cached per (n, qubits).
    """
    key = (num_qubits, tuple(qubits))
    if key not in _CACHE:
        if len(key[1]) == 1:
            _CACHE[key] = generate_single_qubit_kernel(num_qubits, key[1][0])
        else:
            _CACHE[key] = generate_einsum_kernel(num_qubits, key[1])
    return _CACHE[key]


def clear_kernel_cache() -> None:
    """Drop all cached generated kernels (mainly for tests)."""
    _CACHE.clear()
