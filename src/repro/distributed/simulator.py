"""Distributed circuit execution."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.distributed.state import DistributedState
from repro.distributed.storage import ShardStorage

__all__ = ["DistributedSimulator", "DistributedRunResult"]


@dataclass
class DistributedRunResult:
    """Output of one distributed run."""

    state: DistributedState
    wall_seconds: float

    @property
    def comm(self):
        """Communication counters accumulated during the run."""
        return self.state.stats

    @property
    def kernel_cost(self):
        """Kernel FLOP/byte accounting accumulated during the run."""
        return self.state.kernel_cost


class DistributedSimulator:
    """Runs circuits or scheduled programs on a :class:`DistributedState`.

    Parameters
    ----------
    num_qubits / local_qubits:
        State split: ``2**(num_qubits - local_qubits)`` virtual nodes with
        ``2**local_qubits`` amplitudes each.
    storage:
        Optional shard backend (defaults to in-memory; pass
        :class:`repro.distributed.DiskShards` for SSD-resident state).
    initial_state:
        ``"zero"`` or ``"plus"``.
    """

    def __init__(
        self,
        num_qubits: int,
        local_qubits: int,
        *,
        storage: ShardStorage | None = None,
        initial_state: str = "zero",
        single_precision: bool = False,
    ) -> None:
        self.num_qubits = num_qubits
        self.local_qubits = local_qubits
        self._storage = storage
        self._initial_state = initial_state
        self._single_precision = single_precision

    def new_state(self, initial_global_qubits=None) -> DistributedState:
        """Allocate a fresh distributed initial state."""
        return DistributedState(
            self.num_qubits,
            self.local_qubits,
            storage=self._storage,
            init=self._initial_state,
            initial_global_qubits=initial_global_qubits,
            single_precision=self._single_precision,
        )

    def run(
        self,
        circuit: Circuit,
        *,
        state: DistributedState | None = None,
        auto_swap: bool = True,
    ) -> DistributedRunResult:
        """Execute *circuit* gate by gate.

        With ``auto_swap`` (default) non-specializable global gates trigger
        a global-to-local swap bringing their qubits local — the naive
        execution mode the scheduler improves on.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits, simulator has "
                f"{self.num_qubits}"
            )
        if state is None:
            state = self.new_state()
        start = time.perf_counter()
        for gate in circuit:
            state.apply_gate(gate, auto_swap=auto_swap)
        return DistributedRunResult(state, time.perf_counter() - start)

    def run_schedule(
        self,
        schedule,
        *,
        state: DistributedState | None = None,
    ) -> DistributedRunResult:
        """Execute a :class:`repro.scheduling.Schedule` program.

        The schedule's operations are either fused cluster gates (applied
        locally / via specialization) or explicit swap points changing the
        global qubit set.  Exactly the execution model of Sec. 3.6.  The
        first stage's layout is adopted at initialisation for free; the
        schedule's ``initial_state`` ("plus" when the Hadamard layer was
        absorbed) overrides the simulator default.
        """
        if state is None:
            initial = getattr(schedule, "initial_state", self._initial_state)
            state = DistributedState(
                self.num_qubits,
                self.local_qubits,
                storage=self._storage,
                init=initial,
                initial_global_qubits=schedule.initial_global_qubits or None,
                single_precision=self._single_precision,
            )
        start = time.perf_counter()
        for op in schedule.operations():
            op.execute(state)
        return DistributedRunResult(state, time.perf_counter() - start)

    def run_resilient(
        self,
        schedule,
        checkpoint_dir,
        *,
        plan=None,
        policy=None,
        checkpoint_every: int = 4,
        verify: str = "swap",
        sanitizer=None,
    ):
        """Execute a schedule fault-tolerantly (checkpoint-restart etc.).

        Convenience front door to
        :class:`repro.resilience.ResilientExecutor`; see that class for
        the recovery semantics.  Returns a
        :class:`repro.resilience.ResilientRunResult`.  Restart states are
        rebuilt in memory from the checkpoint, so custom ``storage``
        backends are not carried across a restart.
        """
        from repro.resilience import ResilientExecutor  # avoid import cycle

        return ResilientExecutor(
            schedule,
            checkpoint_dir,
            plan=plan,
            policy=policy,
            checkpoint_every=checkpoint_every,
            verify=verify,
            sanitizer=sanitizer,
        ).run()
