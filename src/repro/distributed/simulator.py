"""Distributed circuit execution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.distributed.state import DistributedState
from repro.distributed.storage import ShardStorage
from repro.telemetry.runtime import Telemetry

__all__ = ["DistributedSimulator", "DistributedRunResult"]


@dataclass
class DistributedRunResult:
    """Output of one distributed run."""

    state: DistributedState
    wall_seconds: float
    #: Op-level :class:`~repro.distributed.tracing.ExecutionTrace` when the
    #: run was executed with telemetry, else ``None``.
    trace: object | None = None

    @property
    def comm(self):
        """Communication counters accumulated during the run."""
        return self.state.stats

    @property
    def kernel_cost(self):
        """Kernel FLOP/byte accounting accumulated during the run."""
        return self.state.kernel_cost


class DistributedSimulator:
    """Runs circuits or scheduled programs on a :class:`DistributedState`.

    Parameters
    ----------
    num_qubits / local_qubits:
        State split: ``2**(num_qubits - local_qubits)`` virtual nodes with
        ``2**local_qubits`` amplitudes each.
    storage:
        Optional shard backend (defaults to in-memory; pass
        :class:`repro.distributed.DiskShards` for SSD-resident state).
    initial_state:
        ``"zero"`` or ``"plus"``.
    telemetry:
        Optional :class:`~repro.telemetry.runtime.Telemetry` bundle; when
        active, runs record spans/metrics and schedule runs return an
        op-level trace.  Defaults to the shared no-op bundle.
    """

    def __init__(
        self,
        num_qubits: int,
        local_qubits: int,
        *,
        storage: ShardStorage | None = None,
        initial_state: str = "zero",
        single_precision: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.num_qubits = num_qubits
        self.local_qubits = local_qubits
        self._storage = storage
        self._initial_state = initial_state
        self._single_precision = single_precision
        self.telemetry = telemetry

    def new_state(self, initial_global_qubits=None) -> DistributedState:
        """Allocate a fresh distributed initial state."""
        return DistributedState(
            self.num_qubits,
            self.local_qubits,
            storage=self._storage,
            init=self._initial_state,
            initial_global_qubits=initial_global_qubits,
            single_precision=self._single_precision,
            telemetry=self.telemetry,
        )

    def run(
        self,
        circuit: Circuit,
        *,
        state: DistributedState | None = None,
        auto_swap: bool = True,
    ) -> DistributedRunResult:
        """Execute *circuit* gate by gate.

        With ``auto_swap`` (default) non-specializable global gates trigger
        a global-to-local swap bringing their qubits local — the naive
        execution mode the scheduler improves on.
        """
        from repro.runtime import ExecutionEngine

        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits, simulator has "
                f"{self.num_qubits}"
            )
        if state is None:
            state = self.new_state()
        elif self.telemetry is not None:
            state.use_telemetry(self.telemetry)
        engine = ExecutionEngine.for_circuit(
            circuit, auto_swap=auto_swap, telemetry=state.telemetry
        )
        result = engine.run(state=state)
        return DistributedRunResult(result.state, result.wall_seconds)

    def run_schedule(
        self,
        schedule,
        *,
        state: DistributedState | None = None,
        use_plan: bool = True,
        plan_config=None,
        layers=(),
    ) -> DistributedRunResult:
        """Execute a :class:`repro.scheduling.Schedule` program.

        The schedule's operations are either fused cluster gates (applied
        locally / via specialization) or explicit swap points changing the
        global qubit set.  Exactly the execution model of Sec. 3.6.  The
        first stage's layout is adopted at initialisation for free; the
        schedule's ``initial_state`` ("plus" when the Hadamard layer was
        absorbed) overrides the simulator default.

        By default the schedule is lowered (once, memoized on the
        schedule) to a :class:`repro.plan.CompiledProgram` and that plan
        is executed — pre-resolved strategies, cached gather tables,
        fused diagonal runs and refused multi-op kernels.  A
        :class:`repro.plan.PlanConfig` passed as *plan_config* selects
        (and memoizes under) a specific compile configuration, e.g. a
        non-default ``fusion_kmax``.  ``use_plan=False`` keeps the
        original op-by-op interpreter.

        With an active telemetry bundle the result carries the op-level
        trace; planned and unplanned runs produce identical trace
        signatures.  Extra *layers* (e.g. a
        :class:`~repro.runtime.PipelineLayer`) are appended after the
        tracing layer.
        """
        if state is None:
            initial = getattr(schedule, "initial_state", self._initial_state)
            state = DistributedState(
                self.num_qubits,
                self.local_qubits,
                storage=self._storage,
                init=initial,
                initial_global_qubits=schedule.initial_global_qubits or None,
                single_precision=self._single_precision,
                telemetry=self.telemetry,
            )
        from repro.runtime import ExecutionEngine, TracingLayer

        traced = self.telemetry is not None and self.telemetry.active
        stack = [TracingLayer(self.telemetry)] if traced else []
        stack.extend(layers)
        engine = ExecutionEngine(  # lint: allow-engine-direct
            schedule, use_plan=use_plan, plan_config=plan_config, layers=stack
        )
        result = engine.run(state=state)
        return DistributedRunResult(
            result.state, result.wall_seconds, trace=result.trace
        )

    def run_resilient(
        self,
        schedule,
        checkpoint_dir,
        *,
        plan=None,
        policy=None,
        checkpoint_every: int = 4,
        verify: str = "swap",
        sanitizer=None,
    ):
        """Execute a schedule fault-tolerantly (checkpoint-restart etc.).

        Convenience front door to
        :class:`repro.resilience.ResilientExecutor`; see that class for
        the recovery semantics.  Returns a
        :class:`repro.resilience.ResilientRunResult`.  The simulator's
        ``storage`` backend and precision are carried across restarts: a
        state factory closing over them rebuilds every restart state and
        the vessel checkpoints are loaded into, so a ``DiskShards`` run
        stays SSD-resident through recovery.
        """
        from repro.resilience import ResilientExecutor  # avoid import cycle

        def state_factory() -> DistributedState:
            return DistributedState(
                schedule.num_qubits,
                schedule.local_qubits,
                storage=self._storage,
                init=getattr(schedule, "initial_state", self._initial_state),
                initial_global_qubits=schedule.initial_global_qubits or None,
                single_precision=self._single_precision,
            )

        return ResilientExecutor(
            schedule,
            checkpoint_dir,
            plan=plan,
            policy=policy,
            checkpoint_every=checkpoint_every,
            verify=verify,
            sanitizer=sanitizer,
            telemetry=self.telemetry,
            state_factory=state_factory,
        ).run()
