"""Multi-node simulation layer (Secs. 3.4-3.5 of the paper).

The paper runs on MPI across up to 8,192 Cori II nodes.  This environment
has no MPI, so the layer is built over a *simulated* communicator:

* :mod:`repro.distributed.storage` — shard storage backends.  A "node" (MPI
  rank) owns one shard of ``2**l`` amplitudes; shards live either in memory
  (:class:`InMemoryShards`) or as disk files (:class:`DiskShards`, the
  SSD-backed execution mode the paper's outlook motivates).
* :mod:`repro.distributed.comm` — :class:`CommStats`: exact accounting of
  communication steps and bytes, the quantities Table 2 and Fig. 5 report.
* :mod:`repro.distributed.state` — :class:`DistributedState`: the
  global/local qubit split, local kernels, the global-to-local swap as
  (group-local) all-to-alls (Fig. 3), and global-gate specialization for
  diagonal and monomial gates (Sec. 3.5).
* :mod:`repro.distributed.simulator` — :class:`DistributedSimulator`: runs
  circuits (auto-swapping) or scheduler output programs.

Everything operates on real amplitudes, so distributed results are
verified bit-for-bit against the single-node simulator.
"""

from repro.distributed.comm import CommStats
from repro.distributed.simulator import DistributedSimulator
from repro.distributed.state import DistributedState, NeedsSwapError
from repro.distributed.storage import DiskShards, InMemoryShards, ShardStorage

__all__ = [
    "CommStats",
    "DiskShards",
    "DistributedSimulator",
    "DistributedState",
    "InMemoryShards",
    "NeedsSwapError",
    "ShardStorage",
]
