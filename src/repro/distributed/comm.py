"""Communication accounting for the simulated MPI layer.

The paper's multi-node analysis counts two quantities:

* **communication steps** — the number of (group-local) all-to-alls; the
  top panels of Fig. 5 plot exactly this ("#Swaps"), and Sec. 3.6.1's
  headline result is reducing it to 2 for the 45-qubit circuit;
* **bytes on the network** — each q-qubit global-to-local swap moves
  ``(2**q - 1)/2**q`` of every rank's ``2**l * 16`` bytes.

:class:`CommStats` tracks both, plus rank renumberings (which are free on
real MPI — Sec. 3.5 — but still interesting to count).  Its event log is
a list of typed :class:`CommEvent` records; a stats object bound to a
:class:`~repro.telemetry.metrics.MetricsRegistry` via
:meth:`CommStats.bind_metrics` additionally streams every count into the
run's ``comm.*`` counters as it happens.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

__all__ = ["CommEvent", "CommStats"]


@dataclass(frozen=True)
class CommEvent:
    """One communication-layer event (typed successor of the raw dicts).

    ``num_groups``/``group_size`` are populated for all-to-all events
    only.  Dict-style access (``event["kind"]``) still works behind a
    :class:`DeprecationWarning` so pre-telemetry callers keep running.
    """

    kind: str  # "alltoall" | "renumber"
    bytes: int = 0
    num_groups: int | None = None
    group_size: int | None = None

    def __getitem__(self, key: str):
        warnings.warn(
            "dict-style access to CommEvent is deprecated; use attribute "
            f"access (event.{key})",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default=None):
        """Dict-compatible lookup (same deprecation shim)."""
        try:
            return self[key]
        except KeyError:
            return default

    def to_dict(self) -> dict:
        """Plain-dict form (the old event representation)."""
        out = {"kind": self.kind, "bytes": self.bytes}
        if self.num_groups is not None:
            out["num_groups"] = self.num_groups
        if self.group_size is not None:
            out["group_size"] = self.group_size
        return out


@dataclass
class CommStats:
    """Accumulated communication counters for one distributed run."""

    alltoall_steps: int = 0
    group_alltoall_calls: int = 0
    bytes_on_network: int = 0
    rank_renumberings: int = 0
    local_swap_kernels: int = 0
    events: list[CommEvent] = field(default_factory=list)

    def bind_metrics(self, registry) -> "CommStats":
        """Stream future counts into *registry*'s ``comm.*`` counters.

        Pass ``None`` to unbind.  Returns ``self`` for chaining; the
        binding survives :meth:`reset` (the counters are cumulative per
        registry, exactly like ``bytes_on_network`` is per stats object).
        """
        self._metrics = registry
        return self

    @property
    def metrics(self):
        """The bound registry, or ``None``."""
        return getattr(self, "_metrics", None)

    def record_alltoall(
        self, *, num_groups: int, group_size: int, shard_bytes: int
    ) -> None:
        """Record one q-qubit global-to-local swap.

        A swap over ``group_size = 2**q`` ranks per group is *one*
        communication step (all group-local all-to-alls proceed in
        parallel on a real machine), with every rank shipping all but its
        diagonal block: ``shard_bytes * (group_size - 1) / group_size``.
        """
        if group_size < 1 or num_groups < 1:
            raise ValueError("group_size and num_groups must be >= 1")
        moved_per_rank = shard_bytes * (group_size - 1) // group_size
        total = moved_per_rank * group_size * num_groups
        self.alltoall_steps += 1
        self.group_alltoall_calls += num_groups
        self.bytes_on_network += total
        self.events.append(
            CommEvent(
                kind="alltoall",
                bytes=total,
                num_groups=num_groups,
                group_size=group_size,
            )
        )
        registry = self.metrics
        if registry is not None:
            registry.counter("comm.alltoall_steps").inc()
            registry.counter("comm.group_alltoall_calls").inc(num_groups)
            registry.counter("comm.bytes_on_network").inc(total)

    def record_rank_renumbering(self) -> None:
        """Record a free rank-relabeling (global monomial gate, Sec. 3.5)."""
        self.rank_renumberings += 1
        self.events.append(CommEvent(kind="renumber", bytes=0))
        registry = self.metrics
        if registry is not None:
            registry.counter("comm.rank_renumberings").inc()

    def record_local_swap(self) -> None:
        """Record a local swap kernel used to stage a global-to-local swap."""
        self.local_swap_kernels += 1
        registry = self.metrics
        if registry is not None:
            registry.counter("comm.local_swap_kernels").inc()

    def merge(self, other: "CommStats") -> None:
        """Fold another counter into this one.

        Metrics are *not* re-streamed: a bound ``other`` already counted
        its events at record time, and an unbound attempt counter is
        expected to have been bound to the same registry (see the
        resilience supervisor's per-attempt swap).
        """
        self.alltoall_steps += other.alltoall_steps
        self.group_alltoall_calls += other.group_alltoall_calls
        self.bytes_on_network += other.bytes_on_network
        self.rank_renumberings += other.rank_renumberings
        self.local_swap_kernels += other.local_swap_kernels
        self.events.extend(other.events)

    def reset(self) -> None:
        """Zero every counter and drop the event log.

        With :meth:`merge` this supports per-attempt accounting: swap in a
        fresh/reset counter for one op attempt, then fold it into the run
        totals only if the attempt succeeded — a retried attempt never
        double-counts.
        """
        self.alltoall_steps = 0
        self.group_alltoall_calls = 0
        self.bytes_on_network = 0
        self.rank_renumberings = 0
        self.local_swap_kernels = 0
        self.events.clear()
