"""Communication accounting for the simulated MPI layer.

The paper's multi-node analysis counts two quantities:

* **communication steps** — the number of (group-local) all-to-alls; the
  top panels of Fig. 5 plot exactly this ("#Swaps"), and Sec. 3.6.1's
  headline result is reducing it to 2 for the 45-qubit circuit;
* **bytes on the network** — each q-qubit global-to-local swap moves
  ``(2**q - 1)/2**q`` of every rank's ``2**l * 16`` bytes.

:class:`CommStats` tracks both, plus rank renumberings (which are free on
real MPI — Sec. 3.5 — but still interesting to count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommStats"]


@dataclass
class CommStats:
    """Accumulated communication counters for one distributed run."""

    alltoall_steps: int = 0
    group_alltoall_calls: int = 0
    bytes_on_network: int = 0
    rank_renumberings: int = 0
    local_swap_kernels: int = 0
    events: list[dict] = field(default_factory=list)

    def record_alltoall(
        self, *, num_groups: int, group_size: int, shard_bytes: int
    ) -> None:
        """Record one q-qubit global-to-local swap.

        A swap over ``group_size = 2**q`` ranks per group is *one*
        communication step (all group-local all-to-alls proceed in
        parallel on a real machine), with every rank shipping all but its
        diagonal block: ``shard_bytes * (group_size - 1) / group_size``.
        """
        if group_size < 1 or num_groups < 1:
            raise ValueError("group_size and num_groups must be >= 1")
        moved_per_rank = shard_bytes * (group_size - 1) // group_size
        total = moved_per_rank * group_size * num_groups
        self.alltoall_steps += 1
        self.group_alltoall_calls += num_groups
        self.bytes_on_network += total
        self.events.append(
            {
                "kind": "alltoall",
                "num_groups": num_groups,
                "group_size": group_size,
                "bytes": total,
            }
        )

    def record_rank_renumbering(self) -> None:
        """Record a free rank-relabeling (global monomial gate, Sec. 3.5)."""
        self.rank_renumberings += 1
        self.events.append({"kind": "renumber", "bytes": 0})

    def record_local_swap(self) -> None:
        """Record a local swap kernel used to stage a global-to-local swap."""
        self.local_swap_kernels += 1

    def merge(self, other: "CommStats") -> None:
        """Fold another counter into this one."""
        self.alltoall_steps += other.alltoall_steps
        self.group_alltoall_calls += other.group_alltoall_calls
        self.bytes_on_network += other.bytes_on_network
        self.rank_renumberings += other.rank_renumberings
        self.local_swap_kernels += other.local_swap_kernels
        self.events.extend(other.events)

    def reset(self) -> None:
        """Zero every counter and drop the event log.

        With :meth:`merge` this supports per-attempt accounting: swap in a
        fresh/reset counter for one op attempt, then fold it into the run
        totals only if the attempt succeeded — a retried attempt never
        double-counts.
        """
        self.alltoall_steps = 0
        self.group_alltoall_calls = 0
        self.bytes_on_network = 0
        self.rank_renumberings = 0
        self.local_swap_kernels = 0
        self.events.clear()
