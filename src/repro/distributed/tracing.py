"""Op-level execution tracing.

Table 2's "Comm." column comes from instrumenting the run; this module
does the same for any schedule execution: per-operation wall time,
classified into kernel / specialization / communication, plus a text
timeline for eyeballing where a run spends its life.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.distributed.state import DistributedState
from repro.scheduling.program import ClusterOp, GateOp, Schedule, SwapOp

__all__ = ["TraceEvent", "ExecutionTrace", "trace_schedule_execution"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed operation (or, under resilient execution, one fault).

    ``index`` numbers events in emission order; ``op_index`` is the
    position in the schedule's op stream.  The two differ only under
    retries/restarts, where one op can produce several events.
    ``bytes_moved`` is populated for swap events from the communication
    counters so chaos reports and normal traces share one event model.
    """

    index: int
    kind: str  # "cluster" | "specialized" | "swap" | "absorbed" | "fault"
    label: str
    seconds: float
    bytes_moved: int | None = None
    op_index: int | None = None


@dataclass
class ExecutionTrace:
    """All events of one run, with aggregation helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Sum of all event durations."""
        return sum(e.seconds for e in self.events)

    def seconds_by_kind(self) -> dict[str, float]:
        """Wall time aggregated per event kind."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0.0) + e.seconds
        return out

    @property
    def comm_fraction(self) -> float:
        """Measured share of time in swaps (compare: Table 2's column)."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return self.seconds_by_kind().get("swap", 0.0) / total

    def signature(self) -> list[tuple]:
        """A timing-free identity for determinism checks.

        Two executions of the same schedule under the same fault plan must
        produce equal signatures even though wall times differ.
        """
        return [
            (e.kind, e.label, e.op_index, e.bytes_moved) for e in self.events
        ]

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved across all events that recorded any."""
        return sum(e.bytes_moved or 0 for e in self.events)

    def timeline(self, *, width: int = 60) -> str:
        """A proportional text timeline (one row per op)."""
        total = max(self.total_seconds, 1e-12)
        lines = [f"{'op':>3} {'kind':<11} {'seconds':>9}  timeline"]
        for e in self.events:
            bar = "#" * max(1, round(width * e.seconds / total))
            lines.append(
                f"{e.index:>3} {e.kind:<11} {e.seconds:>9.4f}  {bar}"
            )
        by_kind = self.seconds_by_kind()
        summary = ", ".join(
            f"{kind} {seconds:.3f}s" for kind, seconds in sorted(by_kind.items())
        )
        lines.append(f"total {self.total_seconds:.3f}s ({summary})")
        return "\n".join(lines)


def _classify(op) -> tuple[str, str]:
    if isinstance(op, SwapOp):
        return "swap", f"swap -> globals {sorted(op.new_global_qubits)}"
    if isinstance(op, GateOp):
        return "specialized", f"{op.gate.name}{op.gate.qubits}"
    if isinstance(op, ClusterOp):
        return "cluster", f"k={op.num_qubits} ({op.num_gates} gates)"
    return "absorbed", f"k={op.num_qubits} (+{op.num_gates - op.cluster.num_gates} diag)"


def trace_schedule_execution(
    state: DistributedState, schedule: Schedule
) -> ExecutionTrace:
    """Execute *schedule* on *state*, timing every operation."""
    trace = ExecutionTrace()
    for index, op in enumerate(schedule.operations()):
        kind, label = _classify(op)
        bytes_before = state.stats.bytes_on_network
        start = time.perf_counter()
        op.execute(state)
        moved = state.stats.bytes_on_network - bytes_before
        trace.events.append(
            TraceEvent(
                index=index,
                kind=kind,
                label=label,
                seconds=time.perf_counter() - start,
                bytes_moved=moved if kind == "swap" else None,
                op_index=index,
            )
        )
    return trace
