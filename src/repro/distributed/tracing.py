"""Op-level execution tracing.

Table 2's "Comm." column comes from instrumenting the run; this module
does the same for any schedule execution: per-operation wall time,
classified into kernel / specialization / communication, plus a text
timeline for eyeballing where a run spends its life.

Since the telemetry layer landed, the primary record of a run is the
hierarchical span tree collected by a
:class:`~repro.telemetry.spans.Tracer`; :class:`ExecutionTrace` is the
flat *view* over that tree (one :class:`TraceEvent` per op-level span,
built by :meth:`ExecutionTrace.from_spans`), kept because its
timing-free :meth:`~ExecutionTrace.signature` is the determinism anchor
the resilience suite compares runs with.  Aggregations are computed once
when a finalized trace is frozen, not re-summed per property access.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.distributed.state import DistributedState
from repro.scheduling.program import ClusterOp, GateOp, Schedule, SwapOp
from repro.telemetry.runtime import Telemetry

__all__ = [
    "OP_EVENT_KINDS",
    "TraceEvent",
    "ExecutionTrace",
    "trace_schedule_execution",
]

#: Span kinds that surface as flat :class:`TraceEvent`s.  Spans of any
#: other kind (``run``, ``kernel``, ``comm``, ``schedule``, per-rank lane
#: copies, aborted attempts...) stay in the span tree only.
OP_EVENT_KINDS = frozenset(
    {"cluster", "specialized", "swap", "absorbed", "fault"}
)


@dataclass(frozen=True)
class TraceEvent:
    """One executed operation (or, under resilient execution, one fault).

    ``index`` numbers events in emission order; ``op_index`` is the
    position in the schedule's op stream.  The two differ only under
    retries/restarts, where one op can produce several events.
    ``bytes_moved`` is populated for swap events from the communication
    counters so chaos reports and normal traces share one event model.
    """

    index: int
    kind: str  # "cluster" | "specialized" | "swap" | "absorbed" | "fault"
    label: str
    seconds: float
    bytes_moved: int | None = None
    op_index: int | None = None


@dataclass
class ExecutionTrace:
    """All events of one run, with aggregation helpers.

    A trace under construction recomputes its aggregates on demand; once
    the run is over, :meth:`freeze` computes them a single time and
    caches — afterwards :meth:`add` refuses further events.
    """

    events: list[TraceEvent] = field(default_factory=list)
    #: Source spans when the trace was built from a tracer (else empty).
    spans: list = field(default_factory=list, repr=False, compare=False)
    _cache: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_spans(cls, spans, *, freeze: bool = True) -> "ExecutionTrace":
        """Build the flat op-event view over a tracer's span list.

        Only spans whose ``kind`` is in :data:`OP_EVENT_KINDS` become
        events, in recording order — internal kernel/comm spans, run
        roots and per-rank lane copies are skipped.  Swap events pick up
        ``bytes_moved`` from the span's ``bytes`` attribute.
        """
        trace = cls(spans=list(spans))
        for span in trace.spans:
            if span.kind not in OP_EVENT_KINDS:
                continue
            trace.events.append(
                TraceEvent(
                    index=len(trace.events),
                    kind=span.kind,
                    label=span.name,
                    seconds=span.seconds,
                    bytes_moved=span.attrs.get("bytes"),
                    op_index=span.attrs.get("op_index"),
                )
            )
        return trace.freeze() if freeze else trace

    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """True once aggregates are cached and the trace is append-closed."""
        return self._cache is not None

    def add(self, event: TraceEvent) -> None:
        """Append an event; refuses once the trace is frozen."""
        if self.frozen:
            raise RuntimeError(
                "trace is frozen; aggregates are already cached"
            )
        self.events.append(event)

    def freeze(self) -> "ExecutionTrace":
        """Compute every aggregate once and close the trace to appends."""
        by_kind: dict[str, float] = {}
        total = 0.0
        moved = 0
        for e in self.events:
            by_kind[e.kind] = by_kind.get(e.kind, 0.0) + e.seconds
            total += e.seconds
            moved += e.bytes_moved or 0
        self._cache = {
            "total_seconds": total,
            "seconds_by_kind": by_kind,
            "bytes_moved": moved,
        }
        return self

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Sum of all event durations (cached once frozen)."""
        if self._cache is not None:
            return self._cache["total_seconds"]
        return sum(e.seconds for e in self.events)

    def seconds_by_kind(self) -> dict[str, float]:
        """Wall time aggregated per event kind (cached once frozen)."""
        if self._cache is not None:
            return dict(self._cache["seconds_by_kind"])
        out: dict[str, float] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0.0) + e.seconds
        return out

    @property
    def comm_fraction(self) -> float:
        """Measured share of time in swaps (compare: Table 2's column)."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return self.seconds_by_kind().get("swap", 0.0) / total

    def signature(self) -> list[tuple]:
        """A timing-free identity for determinism checks.

        Two executions of the same schedule under the same fault plan must
        produce equal signatures even though wall times differ.
        """
        return [
            (e.kind, e.label, e.op_index, e.bytes_moved) for e in self.events
        ]

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved across all events that recorded any."""
        if self._cache is not None:
            return self._cache["bytes_moved"]
        return sum(e.bytes_moved or 0 for e in self.events)

    def timeline(self, *, width: int = 60) -> str:
        """A proportional text timeline (one row per op)."""
        total = max(self.total_seconds, 1e-12)
        by_kind = self.seconds_by_kind()
        lines = [f"{'op':>3} {'kind':<11} {'seconds':>9}  timeline"]
        for e in self.events:
            bar = "#" * max(1, round(width * e.seconds / total))
            lines.append(
                f"{e.index:>3} {e.kind:<11} {e.seconds:>9.4f}  {bar}"
            )
        summary = ", ".join(
            f"{kind} {seconds:.3f}s" for kind, seconds in sorted(by_kind.items())
        )
        lines.append(f"total {self.total_seconds:.3f}s ({summary})")
        return "\n".join(lines)


def _classify(op) -> tuple[str, str]:
    if isinstance(op, SwapOp):
        return "swap", f"swap -> globals {sorted(op.new_global_qubits)}"
    if isinstance(op, GateOp):
        return "specialized", f"{op.gate.name}{op.gate.qubits}"
    if isinstance(op, ClusterOp):
        return "cluster", f"k={op.num_qubits} ({op.num_gates} gates)"
    return "absorbed", f"k={op.num_qubits} (+{op.num_gates - op.cluster.num_gates} diag)"


def trace_schedule_execution(
    state: DistributedState,
    schedule: Schedule,
    *,
    telemetry: Telemetry | None = None,
) -> ExecutionTrace:
    """Execute *schedule* on *state*, timing every operation.

    .. deprecated::
        Thin shim over :class:`repro.runtime.ExecutionEngine` with a
        :class:`~repro.runtime.TracingLayer`; build that stack directly.

    With no *telemetry* a private span tracer records just the op-level
    spans; pass a live :class:`~repro.telemetry.runtime.Telemetry` to
    also collect the nested kernel/comm spans and stream metrics (the
    bundle is attached to *state* for the duration of the call).
    """
    warnings.warn(
        "trace_schedule_execution is deprecated; run the schedule through "
        "repro.runtime.ExecutionEngine with a TracingLayer",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime import ExecutionEngine, TracingLayer

    engine = ExecutionEngine(  # lint: allow-engine-direct
        schedule, use_plan=False, layers=[TracingLayer(telemetry)]
    )
    return engine.run(state=state).trace
