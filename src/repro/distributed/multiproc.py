"""Process-parallel schedule execution over shared memory.

The in-process :class:`DistributedState` iterates over virtual ranks in
a loop; this module runs the same program with *real* OS processes — one
per rank, like MPI — over :mod:`multiprocessing.shared_memory`:

* the state lives in one shared block (all shards contiguous) plus a
  scratch block of equal size used as the exchange buffer;
* every worker executes the schedule deterministically in lockstep,
  applying kernels only to its own shard;
* communication points (global-to-local swaps, monomial rank
  renumberings) are two-phase: each worker publishes its shard to the
  scratch block, a barrier, then each worker gathers its new shard —
  exactly an all-to-all's data motion;
* layout bookkeeping (``bit_of_qubit``) is replicated: it evolves
  deterministically, so no control messages are needed beyond barriers.

On a single-core container this demonstrates correctness and the
communication structure; on a multi-core host the workers genuinely
execute kernels in parallel.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from multiprocessing import shared_memory

import numpy as np

from repro.kernels import apply_diagonal_gate, apply_gate
from repro.scheduling.program import ClusterOp, GateOp, Schedule, SwapOp
from repro.statevector.state import StateVector
from repro.util.bits import extract_bits

__all__ = ["MultiprocessRunner"]

_DTYPE = np.complex128


class _WorkerLayout:
    """Replicated layout bookkeeping (mirrors DistributedState)."""

    def __init__(self, num_qubits: int, local_qubits: int, initial_global) -> None:
        self.n = num_qubits
        self.l = local_qubits
        self.g = num_qubits - local_qubits
        self.bit_of_qubit = list(range(num_qubits))
        if initial_global:
            global_sorted = sorted(initial_global)
            local_sorted = [q for q in range(num_qubits) if q not in set(global_sorted)]
            for bit, q in enumerate(local_sorted + global_sorted):
                self.bit_of_qubit[q] = bit
        #: rank -> shard slot in the shared block.  Rank renumberings are
        #: slot relabelings, mirroring InMemoryShards.permute_shards.
        self.slot_of_rank = list(range(1 << self.g))

    def bits(self, qubits) -> list[int]:
        return [self.bit_of_qubit[q] for q in qubits]

    def is_local(self, qubit: int) -> bool:
        return self.bit_of_qubit[qubit] < self.l

    def global_set(self) -> set[int]:
        return {q for q in range(self.n) if not self.is_local(q)}

    def qubit_at_bit(self, bit: int) -> int:
        return self.bit_of_qubit.index(bit)


def _worker(
    rank: int,
    num_qubits: int,
    local_qubits: int,
    state_name: str,
    scratch_name: str,
    program_bytes: bytes,
    initial_global,
    barrier,
    error_queue,
) -> None:
    """Execute the whole program for one rank (lockstep with barriers)."""
    try:
        shard_size = 1 << local_qubits
        state_shm = shared_memory.SharedMemory(name=state_name)
        scratch_shm = shared_memory.SharedMemory(name=scratch_name)
        full = np.ndarray((1 << num_qubits,), dtype=_DTYPE, buffer=state_shm.buf)
        scratch = np.ndarray((1 << num_qubits,), dtype=_DTYPE, buffer=scratch_shm.buf)
        layout = _WorkerLayout(num_qubits, local_qubits, initial_global)
        ops = pickle.loads(program_bytes)

        def my_shard() -> np.ndarray:
            slot = layout.slot_of_rank[rank]
            return full[slot * shard_size : (slot + 1) * shard_size]

        for op in ops:
            _execute_op(op, rank, layout, my_shard, full, scratch, shard_size, barrier)
        state_shm.close()
        scratch_shm.close()
    except Exception as exc:  # surface worker failures to the coordinator
        error_queue.put((rank, repr(exc)))
        raise


def _publish_and_gather(
    rank,
    layout: _WorkerLayout,
    my_shard,
    full: np.ndarray,
    scratch: np.ndarray,
    shard_size: int,
    barrier,
    gather,
) -> None:
    """Two-phase exchange: publish own shard, barrier, gather new shard."""
    slot = layout.slot_of_rank[rank]
    scratch[slot * shard_size : (slot + 1) * shard_size] = my_shard()
    barrier.wait()
    gather(scratch)
    barrier.wait()  # nobody reuses scratch until all have gathered


def _execute_op(
    op, rank, layout, my_shard, full, scratch, shard_size, barrier
) -> None:
    l = layout.l
    if isinstance(op, SwapOp):
        _execute_swap(op, rank, layout, my_shard, full, scratch, shard_size, barrier)
        return
    if isinstance(op, GateOp):
        gate = op.gate
        bits = layout.bits(gate.qubits)
        if all(b < l for b in bits):
            apply_gate(my_shard(), gate.matrix, bits)
            return
        if gate.is_diagonal:
            _apply_diagonal_global(gate, rank, layout, my_shard)
            return
        if gate.is_monomial:
            _apply_monomial_global(
                gate, rank, layout, my_shard, full, scratch, shard_size, barrier
            )
            return
        raise RuntimeError(f"gate {gate!r} not executable under current layout")
    if isinstance(op, ClusterOp):
        bits = layout.bits(op.qubits)
        apply_gate(my_shard(), op.fused.matrix, bits)
        return
    # AbsorbedClusterOp (duck-typed to avoid import cycles)
    rank_qubits = sorted(op.global_qubits_used())
    rank_bits = {
        q: (rank >> (layout.bit_of_qubit[q] - l)) & 1 for q in rank_qubits
    }
    matrix = op.matrix_for_rank(rank_bits)
    apply_gate(my_shard(), matrix, layout.bits(op.qubits))


def _apply_diagonal_global(gate, rank, layout, my_shard) -> None:
    l = layout.l
    bits = layout.bits(gate.qubits)
    diag = np.diagonal(gate.matrix)
    local_js = [j for j, b in enumerate(bits) if b < l]
    global_js = [j for j, b in enumerate(bits) if b >= l]
    xg = 0
    for j in global_js:
        xg |= ((rank >> (bits[j] - l)) & 1) << j
    shard = my_shard()
    if local_js:
        sub = np.empty(1 << len(local_js), dtype=_DTYPE)
        for xl in range(1 << len(local_js)):
            x = xg
            for jj, j in enumerate(local_js):
                x |= ((xl >> jj) & 1) << j
            sub[xl] = diag[x]
        apply_diagonal_gate(shard, sub, [bits[j] for j in local_js])
    else:
        shard *= diag[xg]


def _apply_monomial_global(
    gate, rank, layout, my_shard, full, scratch, shard_size, barrier
) -> None:
    """Monomial gate with global qubits: local update + shard movement."""
    l = layout.l
    bits = layout.bits(gate.qubits)
    perm = gate.basis_permutation
    phases = gate.basis_phases
    local_js = [j for j, b in enumerate(bits) if b < l]
    global_js = [j for j, b in enumerate(bits) if b >= l]
    k_l = len(local_js)
    num_ranks = 1 << layout.g

    def rank_xg(r: int) -> int:
        xg = 0
        for j in global_js:
            xg |= ((r >> (bits[j] - l)) & 1) << j
        return xg

    # Local part of the update on our own shard.
    xg = rank_xg(rank)
    if k_l:
        sub = np.zeros((1 << k_l, 1 << k_l), dtype=_DTYPE)
        for xl in range(1 << k_l):
            x = xg
            for jj, j in enumerate(local_js):
                x |= ((xl >> jj) & 1) << j
            out = int(perm[x])
            xl_out = 0
            for jj, j in enumerate(local_js):
                xl_out |= ((out >> j) & 1) << jj
            sub[xl_out, xl] = phases[x]
        apply_gate(my_shard(), sub, [bits[j] for j in local_js])
    else:
        phase = phases[xg]
        if not np.isclose(phase, 1.0):
            my_shard()[:] = my_shard() * phase

    # Destination mapping (identical on every worker).
    dest_of = {}
    for r in range(num_ranks):
        x = rank_xg(r)
        out_global = 0
        out = int(perm[x])
        for jj, j in enumerate(global_js):
            out_global |= ((out >> j) & 1) << jj
        dest = r
        for jj, j in enumerate(global_js):
            bit_pos = bits[j] - l
            dest &= ~(1 << bit_pos)
            dest |= ((out_global >> jj) & 1) << bit_pos
        dest_of[r] = dest
    src_of = {dest: src for src, dest in dest_of.items()}

    if all(dest == src for src, dest in dest_of.items()):
        return  # no rank movement at all: everyone skips the barriers

    # Data physically moves between slots (slot labels stay fixed, unlike
    # the in-process pointer relabeling).  EVERY rank participates in the
    # publish/gather barriers, even those gathering from themselves.
    src = src_of[rank]

    def gather(scratch_arr):
        src_slot = layout.slot_of_rank[src]
        my_shard()[:] = scratch_arr[src_slot * shard_size : (src_slot + 1) * shard_size]

    _publish_and_gather(
        rank, layout, my_shard, full, scratch, shard_size, barrier, gather
    )


def _execute_swap(
    op: SwapOp, rank, layout, my_shard, full, scratch, shard_size, barrier
) -> None:
    """Global-to-local swap, mirroring DistributedState.swap_global_set."""
    l, g = layout.l, layout.g
    new_global = set(op.new_global_qubits)
    cur_global = layout.global_set()
    incoming = sorted(cur_global - new_global)
    outgoing = sorted(new_global - cur_global)
    q = len(incoming)
    if q == 0:
        return

    # 1. Free renumbering: incoming qubits to the lowest global bits.
    staying = sorted(cur_global & new_global, key=lambda qq: layout.bit_of_qubit[qq])
    new_positions = {qq: l + i for i, qq in enumerate(incoming)}
    new_positions.update({qq: l + q + i for i, qq in enumerate(staying)})
    old_positions = {qq: layout.bit_of_qubit[qq] for qq in cur_global}
    if any(new_positions[qq] != old_positions[qq] for qq in cur_global):
        # slot relabeling: new rank r holds old rank r_old's shard.
        new_slots = list(layout.slot_of_rank)
        for r_new in range(1 << g):
            r_old = 0
            for qq, new_bit in new_positions.items():
                r_old |= ((r_new >> (new_bit - l)) & 1) << (old_positions[qq] - l)
            new_slots[r_new] = layout.slot_of_rank[r_old]
        layout.slot_of_rank = new_slots
        for qq, new_bit in new_positions.items():
            layout.bit_of_qubit[qq] = new_bit

    # 2. Local swaps: outgoing qubits to the top local bits.
    from repro.gates.matrices import SWAP_MATRIX

    for i, qq in enumerate(outgoing):
        target = l - q + i
        current = layout.bit_of_qubit[qq]
        if current != target:
            apply_gate(my_shard(), SWAP_MATRIX, (current, target))
            qa = layout.qubit_at_bit(current)
            qb = layout.qubit_at_bit(target)
            layout.bit_of_qubit[qa], layout.bit_of_qubit[qb] = target, current

    # 3. The all-to-all block exchange over groups of 2**q ranks.
    group = 1 << q
    block = shard_size // group
    base = (rank // group) * group
    s = rank % group

    def gather(scratch_arr):
        shard = my_shard()
        for b in range(group):
            peer = base + b
            peer_slot = layout.slot_of_rank[peer]
            peer_shard = scratch_arr[
                peer_slot * shard_size : (peer_slot + 1) * shard_size
            ]
            shard[b * block : (b + 1) * block] = peer_shard[
                s * block : (s + 1) * block
            ]

    _publish_and_gather(
        rank, layout, my_shard, full, scratch, shard_size, barrier, gather
    )

    # 4. Update the layout: the two bit ranges swapped contents.
    for qubit in range(layout.n):
        bit = layout.bit_of_qubit[qubit]
        if l - q <= bit < l:
            layout.bit_of_qubit[qubit] = bit + q
        elif l <= bit < l + q:
            layout.bit_of_qubit[qubit] = bit - q


class MultiprocessRunner:
    """Executes a :class:`Schedule` with one OS process per virtual rank.

    Use for modest rank counts (the container must afford ``2**g``
    processes).  Returns the final state gathered into a
    :class:`StateVector`, verified in tests to match both the in-process
    distributed simulator and the single-node reference.
    """

    def __init__(self, num_qubits: int, local_qubits: int) -> None:
        if not 0 < local_qubits <= num_qubits:
            raise ValueError("invalid qubit split")
        if num_qubits - local_qubits > 6:
            raise ValueError(
                "refusing more than 64 worker processes; raise local_qubits"
            )
        self.num_qubits = num_qubits
        self.local_qubits = local_qubits
        self.num_ranks = 1 << (num_qubits - local_qubits)

    def run_schedule(self, schedule: Schedule) -> StateVector:
        """Run *schedule* and return the gathered final state."""
        if schedule.num_qubits != self.num_qubits:
            raise ValueError("schedule size mismatch")
        if schedule.local_qubits != self.local_qubits:
            raise ValueError("schedule local-qubit split mismatch")
        n, l = self.num_qubits, self.local_qubits
        total = 1 << n
        nbytes = total * np.dtype(_DTYPE).itemsize
        state_shm = shared_memory.SharedMemory(create=True, size=nbytes)
        scratch_shm = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            full = np.ndarray((total,), dtype=_DTYPE, buffer=state_shm.buf)
            full[:] = 0
            initial_global = sorted(schedule.initial_global_qubits)
            if schedule.initial_state == "plus":
                full[:] = 2.0 ** (-n / 2)
            else:
                full[0] = 1.0  # zero state is layout-invariant

            program_bytes = pickle.dumps(list(schedule.operations()))
            ctx = mp.get_context("fork")
            barrier = ctx.Barrier(self.num_ranks)
            error_queue = ctx.Queue()
            workers = [
                ctx.Process(
                    target=_worker,
                    args=(
                        rank,
                        n,
                        l,
                        state_shm.name,
                        scratch_shm.name,
                        program_bytes,
                        initial_global,
                        barrier,
                        error_queue,
                    ),
                )
                for rank in range(self.num_ranks)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            if not error_queue.empty():
                rank, message = error_queue.get()
                raise RuntimeError(f"worker {rank} failed: {message}")
            if any(w.exitcode != 0 for w in workers):
                raise RuntimeError("a worker exited abnormally")

            # Gather: replay the layout evolution to decode the final
            # physical ordering into logical amplitude order.
            layout = _WorkerLayout(n, l, initial_global)
            for op in schedule.operations():
                _replay_layout(op, layout)
            out = np.empty(total, dtype=_DTYPE)
            offsets = np.arange(1 << l, dtype=np.int64)
            positions = list(layout.bit_of_qubit)
            for rank in range(self.num_ranks):
                slot = layout.slot_of_rank[rank]
                phys = (rank << l) | offsets
                logical = extract_bits(phys, positions)
                out[logical] = full[slot * (1 << l) : (slot + 1) * (1 << l)]
            return StateVector(n, out)
        finally:
            state_shm.close()
            state_shm.unlink()
            scratch_shm.close()
            scratch_shm.unlink()


def _replay_layout(op, layout: _WorkerLayout) -> None:
    """Evolve layout bookkeeping exactly as the workers do (no data)."""
    l, g = layout.l, layout.g
    if isinstance(op, SwapOp):
        new_global = set(op.new_global_qubits)
        cur_global = layout.global_set()
        incoming = sorted(cur_global - new_global)
        outgoing = sorted(new_global - cur_global)
        q = len(incoming)
        if q == 0:
            return
        staying = sorted(
            cur_global & new_global, key=lambda qq: layout.bit_of_qubit[qq]
        )
        new_positions = {qq: l + i for i, qq in enumerate(incoming)}
        new_positions.update({qq: l + q + i for i, qq in enumerate(staying)})
        old_positions = {qq: layout.bit_of_qubit[qq] for qq in cur_global}
        if any(new_positions[qq] != old_positions[qq] for qq in cur_global):
            new_slots = list(layout.slot_of_rank)
            for r_new in range(1 << g):
                r_old = 0
                for qq, new_bit in new_positions.items():
                    r_old |= ((r_new >> (new_bit - l)) & 1) << (
                        old_positions[qq] - l
                    )
                new_slots[r_new] = layout.slot_of_rank[r_old]
            layout.slot_of_rank = new_slots
            for qq, new_bit in new_positions.items():
                layout.bit_of_qubit[qq] = new_bit
        for i, qq in enumerate(outgoing):
            target = l - q + i
            current = layout.bit_of_qubit[qq]
            if current != target:
                qa = layout.qubit_at_bit(current)
                qb = layout.qubit_at_bit(target)
                layout.bit_of_qubit[qa], layout.bit_of_qubit[qb] = target, current
        for qubit in range(layout.n):
            bit = layout.bit_of_qubit[qubit]
            if l - q <= bit < l:
                layout.bit_of_qubit[qubit] = bit + q
            elif l <= bit < l + q:
                layout.bit_of_qubit[qubit] = bit - q
        return
    # Monomial gates move amplitude data between slots in the worker
    # implementation (slot labels stay fixed), so the layout replay needs
    # no update for them.
