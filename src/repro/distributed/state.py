"""The distributed state: global/local qubits, swaps, specialization.

Physical layout (Sec. 3.4): with ``2**g`` ranks each owning ``2**l``
amplitudes, the *physical* amplitude index has bits ``0..l-1`` local
(offset within a shard) and bits ``l..n-1`` global (the rank number).
``bit_of_qubit`` maps every *logical* qubit to its current physical bit —
local gates, rank renumberings and global-to-local swaps all just edit
this permutation while moving data accordingly.
"""

from __future__ import annotations

import time
import zlib
from typing import Iterable, Sequence

import numpy as np

from repro.distributed.comm import CommStats
from repro.distributed.storage import InMemoryShards, ShardStorage
from repro.gates.gate import Gate
from repro.gates.matrices import SWAP_MATRIX
from repro.kernels import (
    DEFAULT_CHUNK,
    apply_diagonal_gate,
    apply_fused_kernel,
    apply_gate,
)
from repro.kernels.apply import matrix_is_diagonal
from repro.kernels.tables import GATHER_CACHE
from repro.kernels.cost import KernelCostModel
from repro.statevector.state import StateVector
from repro.telemetry.runtime import NULL_TELEMETRY, Telemetry
from repro.util.bits import extract_bits, scatter_bits

__all__ = ["DistributedState", "NeedsSwapError"]


class NeedsSwapError(RuntimeError):
    """Raised when a gate requires a global-to-local swap first."""


class DistributedState:
    """An ``n``-qubit state sharded over ``2**g`` virtual nodes.

    Parameters
    ----------
    num_qubits:
        Total logical qubits ``n``.
    local_qubits:
        ``l`` — each rank stores ``2**l`` amplitudes; ``g = n - l`` ranks
        bits.  Must satisfy ``g <= l`` (required by the full swap, and true
        for every configuration in the paper).
    storage:
        Shard backend; defaults to :class:`InMemoryShards`.  Pass a
        :class:`DiskShards` for SSD-resident state.
    init:
        ``"zero"`` or ``"plus"`` (uniform superposition).
    chunk_size:
        Block size of the indexed kernel on every shard; defaults to the
        autotuned :data:`repro.kernels.DEFAULT_CHUNK`.
    """

    def __init__(
        self,
        num_qubits: int,
        local_qubits: int,
        *,
        storage: ShardStorage | None = None,
        init: str = "zero",
        initial_global_qubits: Iterable[int] | None = None,
        single_precision: bool = False,
        telemetry: Telemetry | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if not 0 < local_qubits <= num_qubits:
            raise ValueError(
                f"local_qubits must be in (0, {num_qubits}], got {local_qubits}"
            )
        self.num_qubits = num_qubits
        self.local_qubits = local_qubits
        self.global_qubits = num_qubits - local_qubits
        if storage is None:
            # Sec. 5: single precision halves the memory, buying one more
            # qubit on the same machine (45 -> 46 qubits on Cori II).
            dtype = np.complex64 if single_precision else np.complex128
            storage = InMemoryShards(
                1 << self.global_qubits, 1 << local_qubits, dtype=dtype
            )
        elif single_precision and storage.dtype != np.complex64:
            raise ValueError(
                "single_precision requested but storage dtype is "
                f"{storage.dtype}"
            )
        if storage.num_shards != 1 << self.global_qubits or storage.shard_size != (
            1 << local_qubits
        ):
            raise ValueError("storage dimensions inconsistent with qubit split")
        self.storage = storage
        #: physical bit position of each logical qubit (a permutation).
        self.bit_of_qubit: list[int] = list(range(num_qubits))
        if initial_global_qubits is not None:
            # Free placement: |0...0> and |+...+> are layout-invariant, so
            # the first stage's global set costs nothing (Sec. 3.6.1).
            global_set = sorted({int(q) for q in initial_global_qubits})
            if len(global_set) != self.global_qubits:
                raise ValueError(
                    f"initial_global_qubits must have {self.global_qubits} "
                    f"entries, got {len(global_set)}"
                )
            local_set = [q for q in range(num_qubits) if q not in set(global_set)]
            for bit, q in enumerate(local_set + global_set):
                self.bit_of_qubit[q] = bit
        self.chunk_size = int(chunk_size) if chunk_size is not None else DEFAULT_CHUNK
        self.stats = CommStats()
        self.kernel_cost = KernelCostModel()
        self.telemetry = NULL_TELEMETRY
        self.use_telemetry(telemetry)
        self._initialize(init)

    def use_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or detach, with ``None``) a telemetry bundle.

        Kernel and comm paths emit spans into its tracer, and the comm
        counters are (re)bound so ``comm.*`` metrics stream as they are
        recorded.  Detaching restores the shared no-op bundle.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        registry = self.telemetry.metrics
        self.stats.bind_metrics(registry if registry.enabled else None)

    # ------------------------------------------------------------------
    # Initialisation / conversion
    # ------------------------------------------------------------------
    def _initialize(self, init: str) -> None:
        if init == "zero":
            shard0 = self.storage.get(0)
            shard0[:] = 0
            shard0[0] = 1.0
            self._sync(shard0)
            for r in range(1, self.num_ranks):
                shard = self.storage.get(r)
                shard[:] = 0
                self._sync(shard)
        elif init == "plus":
            amp = 2.0 ** (-self.num_qubits / 2)
            for r in range(self.num_ranks):
                shard = self.storage.get(r)
                shard[:] = amp
                self._sync(shard)
        else:
            raise ValueError(f"unknown init {init!r}")

    @property
    def num_ranks(self) -> int:
        """Number of virtual nodes (``2**g``)."""
        return self.storage.num_shards

    def _sync(self, shard: np.ndarray) -> None:
        # Delegated so a pipelined DiskShards can turn the synchronous
        # per-op msync into a scheduled background fsync.
        self.storage.sync(shard)

    @classmethod
    def from_statevector(
        cls,
        state: StateVector,
        local_qubits: int,
        *,
        storage: ShardStorage | None = None,
    ) -> "DistributedState":
        """Scatter a logical state vector onto shards (identity layout)."""
        dist = cls(state.num_qubits, local_qubits, storage=storage)
        l = local_qubits
        offsets = np.arange(1 << l, dtype=np.int64)
        for r in range(dist.num_ranks):
            phys = (r << l) | offsets
            shard = dist.storage.get(r)
            shard[:] = state.data[phys]  # identity layout: phys == logical
            dist._sync(shard)
        return dist

    def to_statevector(self) -> StateVector:
        """Gather all shards into a logical-order state vector."""
        n, l = self.num_qubits, self.local_qubits
        out = np.empty(1 << n, dtype=self.storage.dtype)
        offsets = np.arange(1 << l, dtype=np.int64)
        positions = list(self.bit_of_qubit)
        for r in range(self.num_ranks):
            phys = (r << l) | offsets
            logical = extract_bits(phys, positions)
            # extract_bits gathers bit positions[q] into result bit q: the
            # logical index of each physical amplitude.
            out[logical] = self.storage.get(r)
        return StateVector(n, out)

    # ------------------------------------------------------------------
    # Layout queries
    # ------------------------------------------------------------------
    def bit_position(self, qubit: int) -> int:
        """Current physical bit of a logical qubit."""
        return self.bit_of_qubit[qubit]

    def is_local(self, qubit: int) -> bool:
        """True when the qubit's amplitude bit lies inside every shard."""
        return self.bit_of_qubit[qubit] < self.local_qubits

    def local_qubit_set(self) -> set[int]:
        """Logical qubits currently local."""
        return {q for q in range(self.num_qubits) if self.is_local(q)}

    def global_qubit_set(self) -> set[int]:
        """Logical qubits currently global (encoded in the rank number)."""
        return {q for q in range(self.num_qubits) if not self.is_local(q)}

    def _qubit_at_bit(self, bit: int) -> int:
        return self.bit_of_qubit.index(bit)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate, *, auto_swap: bool = False) -> None:
        """Apply *gate*, using specialization for global qubits (Sec. 3.5).

        Dispatch order: all-local kernel, diagonal fast path, monomial
        (rank-renumbering) fast path; otherwise a swap is needed — taken
        automatically when ``auto_swap`` is set, else raising
        :class:`NeedsSwapError`.
        """
        bits = [self.bit_of_qubit[q] for q in gate.qubits]
        l = self.local_qubits
        if all(b < l for b in bits):
            self._apply_local(gate.matrix, bits, diagonal=gate.is_diagonal)
            return
        if gate.is_diagonal:
            self._apply_diagonal_global(np.diagonal(gate.matrix), bits)
            return
        if gate.is_monomial and self._monomial_is_rank_separable(gate, bits):
            self._apply_monomial_global(gate, bits)
            return
        if auto_swap:
            self.make_local(gate.qubits)
            self.apply_gate(gate)
            return
        raise NeedsSwapError(
            f"gate {gate!r} touches global qubits "
            f"{[q for q in gate.qubits if not self.is_local(q)]} and is not "
            "specializable; perform a global-to-local swap first"
        )

    def _apply_local(
        self,
        matrix: np.ndarray | None,
        bits: Sequence[int],
        *,
        diagonal: bool,
        strategy: str | None = None,
        diag: np.ndarray | None = None,
        chunk_size: int | None = None,
    ) -> None:
        """Run one kernel on every shard, resolving decisions exactly once.

        Either *matrix* or (for the diagonal path) *diag* must be given.
        *strategy*/*chunk_size* let a compiled plan hand down pre-resolved
        choices; otherwise they are derived here — but still only once for
        all ``2**g`` ranks, not per shard.
        """
        k = len(bits)
        if diagonal:
            if diag is None:
                diag = np.diagonal(matrix)
        else:
            if strategy is None:
                strategy = "indexed" if k <= 6 else "reference"
            if chunk_size is None:
                chunk_size = self.chunk_size
        tel = self.telemetry
        if not tel.active:
            if diagonal:
                # Batched sweep: the memoized phase factor is resolved
                # once for all 2**g ranks instead of once per shard.
                l = self.local_qubits
                factor = GATHER_CACHE.diagonal_factor(
                    l, tuple(int(b) for b in bits),
                    np.asarray(diag, dtype=self.storage.dtype),
                )
                flat = factor.ndim == 1
                for r in range(self.num_ranks):
                    shard = self.storage.get(r)
                    if flat:
                        shard *= factor
                    else:
                        psi = shard.reshape((2,) * l)
                        psi *= factor
                    self._sync(shard)
            elif strategy in ("indexed", "fused"):
                # Batched sweep: tables/matrix/panels resolved once for
                # all 2**g ranks instead of once per shard.
                apply_fused_kernel(
                    self.storage, self.num_ranks, matrix, bits,
                    self.local_qubits,
                    chunk_size=chunk_size, sync=self._sync,
                )
            else:
                for r in range(self.num_ranks):
                    shard = self.storage.get(r)
                    apply_gate(
                        shard, matrix, bits,
                        strategy=strategy, chunk_size=chunk_size,
                    )
                    self._sync(shard)
            self.kernel_cost.record(
                self.num_qubits, len(bits), diagonal=diagonal
            )
            return
        tracer = tel.tracer
        per_rank = tracer.enabled and tracer.per_rank
        with tracer.span("kernel.apply", kind="kernel", k=k, diagonal=diagonal):
            start = time.perf_counter()
            for r in range(self.num_ranks):
                t0 = tracer.now() if per_rank else 0.0
                shard = self.storage.get(r)
                if diagonal:
                    apply_diagonal_gate(shard, diag, bits)
                else:
                    apply_gate(
                        shard, matrix, bits,
                        strategy=strategy, chunk_size=chunk_size,
                    )
                self._sync(shard)
                if per_rank:
                    tracer.add_span(
                        "kernel.apply",
                        kind="kernel",
                        start=t0,
                        end=tracer.now(),
                        rank=r,
                        k=k,
                    )
            elapsed = time.perf_counter() - start
        self.kernel_cost.record(self.num_qubits, k, diagonal=diagonal)
        tel.metrics.histogram("kernel.apply.seconds", k=k).observe(elapsed)

    # ------------------------------------------------------------------
    # Plan-facing entry points (pre-resolved kernel decisions)
    # ------------------------------------------------------------------
    def apply_compiled(
        self,
        matrix: np.ndarray,
        qubits: Sequence[int],
        *,
        strategy: str,
        chunk_size: int | None = None,
        diag: np.ndarray | None = None,
    ) -> None:
        """Apply a dense (or pre-extracted diagonal) op with a fixed plan.

        Entry point for :class:`repro.plan.CompiledProgram`: the strategy,
        chunk size and (for ``"diagonal"``) the extracted diagonal were
        resolved at compile time, so nothing is re-derived per rank or per
        call.  All target qubits must currently be local.
        """
        bits = [self.bit_of_qubit[q] for q in qubits]
        if any(b >= self.local_qubits for b in bits):
            raise NeedsSwapError(
                f"compiled op touches global qubits "
                f"{[q for q in qubits if not self.is_local(q)]}"
            )
        if strategy == "diagonal":
            self._apply_local(matrix, bits, diagonal=True, diag=diag)
        else:
            self._apply_local(
                matrix, bits, diagonal=False,
                strategy=strategy, chunk_size=chunk_size,
            )

    def apply_diagonal(self, diag: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a diagonal operator given only its ``2**k`` diagonal.

        Dispatches to the local broadcast-multiply when every target qubit
        is local, and to the Sec. 3.5 rank-conditional specialization when
        some are global — no communication either way.
        """
        bits = [self.bit_of_qubit[q] for q in qubits]
        if all(b < self.local_qubits for b in bits):
            self._apply_local(None, bits, diagonal=True, diag=np.asarray(diag))
        else:
            self._apply_diagonal_global(np.asarray(diag), bits)

    def _split_gate_bits(
        self, bits: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Indices *within the gate* of local vs global qubits."""
        l = self.local_qubits
        local_js = [j for j, b in enumerate(bits) if b < l]
        global_js = [j for j, b in enumerate(bits) if b >= l]
        return local_js, global_js

    def _rank_gate_bits(self, rank: int, bits: Sequence[int], global_js) -> int:
        """Gate-basis value contributed by the rank's global bits."""
        l = self.local_qubits
        xg = 0
        for j in global_js:
            xg |= ((rank >> (bits[j] - l)) & 1) << j
        return xg

    def _apply_diagonal_global(self, diag: np.ndarray, bits: Sequence[int]) -> None:
        """Diagonal gate touching global qubits: per-rank phases, no comm.

        A CZ on two global qubits becomes a conditional global phase; a CZ
        with one global qubit becomes a rank-conditional local Z; a T gate
        becomes a rank-conditional phase — exactly the cases of Sec. 3.5.
        """
        tel = self.telemetry
        start = time.perf_counter() if tel.active else 0.0
        local_js, global_js = self._split_gate_bits(bits)
        local_bits = [bits[j] for j in local_js]
        if local_js:
            # Gate-basis index of every local pattern with global bits 0:
            # OR-ing a rank's xg in selects its sub-diagonal in one gather.
            local_patterns = scatter_bits(
                np.arange(1 << len(local_js), dtype=np.int64), local_js
            )
        with tel.tracer.span(
            "kernel.diagonal_global", kind="kernel", k=len(bits)
        ):
            for r in range(self.num_ranks):
                xg = self._rank_gate_bits(r, bits, global_js)
                shard = self.storage.get(r)
                if local_js:
                    sub = np.asarray(diag)[local_patterns | xg]
                    apply_diagonal_gate(shard, sub, local_bits)
                else:
                    shard *= diag[xg]
                self._sync(shard)
        self.kernel_cost.record(self.num_qubits, len(bits), diagonal=True)
        if tel.active:
            tel.metrics.histogram(
                "kernel.specialized.seconds", kind="diagonal"
            ).observe(time.perf_counter() - start)

    def _monomial_is_rank_separable(self, gate: Gate, bits: Sequence[int]) -> bool:
        """True when the gate's action on global bits is local-independent.

        E.g. CNOT with a *global* control and local target is separable
        (each rank either applies X or not); CNOT with a *local* control
        and global target is not (the destination rank would depend on
        local data), so it needs a swap.
        """
        perm = gate.basis_permutation
        assert perm is not None
        local_js, global_js = self._split_gate_bits(bits)
        if not global_js:
            return True
        for xg_pattern in range(1 << len(global_js)):
            seen: set[int] = set()
            for xl_pattern in range(1 << len(local_js)):
                x = 0
                for jj, j in enumerate(global_js):
                    x |= ((xg_pattern >> jj) & 1) << j
                for jj, j in enumerate(local_js):
                    x |= ((xl_pattern >> jj) & 1) << j
                out = int(perm[x])
                out_global = 0
                for jj, j in enumerate(global_js):
                    out_global |= ((out >> j) & 1) << jj
                seen.add(out_global)
            if len(seen) != 1:
                return False
        return True

    def _apply_monomial_global(self, gate: Gate, bits: Sequence[int]) -> None:
        """Monomial gate on global qubits: rank renumbering + local update."""
        tel = self.telemetry
        start = tel.tracer.now() if tel.active else 0.0
        perm = gate.basis_permutation
        phases = gate.basis_phases
        assert perm is not None and phases is not None
        local_js, global_js = self._split_gate_bits(bits)
        local_bits = [bits[j] for j in local_js]
        l = self.local_qubits
        k_l = len(local_js)

        dest_of_src = {}
        for r in range(self.num_ranks):
            xg = self._rank_gate_bits(r, bits, global_js)
            # Build the per-rank local sub-matrix M[xl_out, xl_in].
            sub = np.zeros((1 << k_l, 1 << k_l), dtype=np.complex128)
            out_global_bits = None
            for xl in range(1 << k_l):
                x = xg
                for jj, j in enumerate(local_js):
                    x |= ((xl >> jj) & 1) << j
                out = int(perm[x])
                xl_out = 0
                for jj, j in enumerate(local_js):
                    xl_out |= ((out >> j) & 1) << jj
                sub[xl_out, xl] = phases[x]
                og = 0
                for jj, j in enumerate(global_js):
                    og |= ((out >> j) & 1) << jj
                out_global_bits = og
            # Destination rank: replace this rank's gate-global bits.
            dest = r
            for jj, j in enumerate(global_js):
                bit_pos = bits[j] - l
                dest &= ~(1 << bit_pos)
                dest |= ((out_global_bits >> jj) & 1) << bit_pos
            dest_of_src[r] = dest
            if k_l:
                shard = self.storage.get(r)
                apply_gate(shard, sub, local_bits)
                self._sync(shard)
            elif not np.isclose(phases[xg], 1.0):
                shard = self.storage.get(r)
                shard *= phases[xg]
                self._sync(shard)
        # Relabel shards: new rank d holds old shard src with dest[src]==d.
        permutation = np.empty(self.num_ranks, dtype=np.int64)
        for src, dest in dest_of_src.items():
            permutation[dest] = src
        self.storage.permute_shards(permutation)
        self.stats.record_rank_renumbering()
        if k_l:
            self.kernel_cost.record(self.num_qubits, k_l)
        if tel.active:
            end = tel.tracer.now()
            tel.tracer.add_span(
                "kernel.monomial_global",
                kind="kernel",
                start=start,
                end=end,
                k=len(bits),
            )
            tel.metrics.histogram(
                "kernel.specialized.seconds", kind="monomial"
            ).observe(end - start)

    def apply_rank_conditional_cluster(self, op) -> None:
        """Apply an absorbed cluster: per-rank fused matrix, one kernel.

        *op* is a :class:`repro.scheduling.absorption.AbsorbedClusterOp`;
        its cluster qubits must be local and the absorbed diagonals'
        remaining qubits global.  The diagonal gates cost no extra sweep —
        the Sec. 3.5 "absorbed into the next gate matrix" optimization.
        """
        l = self.local_qubits
        bits = [self.bit_of_qubit[q] for q in op.qubits]
        if any(b >= l for b in bits):
            raise NeedsSwapError(
                f"absorbed cluster touches global qubits "
                f"{[q for q in op.qubits if not self.is_local(q)]}"
            )
        rank_qubits = sorted(op.global_qubits_used())
        for q in rank_qubits:
            if self.is_local(q):
                raise ValueError(
                    f"absorbed diagonal expects qubit {q} to be global"
                )
        tel = self.telemetry
        start = time.perf_counter() if tel.active else 0.0
        diagonal = None
        with tel.tracer.span(
            "kernel.absorbed_cluster", kind="kernel", k=len(bits)
        ):
            for r in range(self.num_ranks):
                rank_bits = {
                    q: (r >> (self.bit_of_qubit[q] - l)) & 1
                    for q in rank_qubits
                }
                matrix = op.matrix_for_rank(rank_bits)
                if diagonal is None:
                    # Absorbed phases never change the cluster's sparsity
                    # pattern, so one scan covers every rank's matrix.
                    diagonal = matrix_is_diagonal(matrix)
                shard = self.storage.get(r)
                apply_gate(
                    shard, matrix, bits,
                    diagonal=diagonal, chunk_size=self.chunk_size,
                )
                self._sync(shard)
        self.kernel_cost.record(self.num_qubits, len(bits))
        if tel.active:
            tel.metrics.histogram(
                "kernel.apply.seconds", k=len(bits)
            ).observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Swaps (Sec. 3.4)
    # ------------------------------------------------------------------
    def _permute_global_bits(self, new_bit_of_qubit: dict[int, int]) -> None:
        """Rearrange which global bit each global qubit occupies (free)."""
        l, g = self.local_qubits, self.global_qubits
        old = {q: self.bit_of_qubit[q] for q in self.global_qubit_set()}
        if set(new_bit_of_qubit) != set(old):
            raise ValueError("must reassign exactly the current global qubits")
        if sorted(new_bit_of_qubit.values()) != sorted(old.values()):
            raise ValueError("new positions must permute the global bits")
        if all(new_bit_of_qubit[q] == old[q] for q in old):
            return
        r_new = np.arange(1 << g, dtype=np.int64)
        r_old = np.zeros_like(r_new)
        for q, new_bit in new_bit_of_qubit.items():
            r_old |= ((r_new >> (new_bit - l)) & 1) << (old[q] - l)
        self.storage.permute_shards(r_old)
        for q, new_bit in new_bit_of_qubit.items():
            self.bit_of_qubit[q] = new_bit
        self.stats.record_rank_renumbering()

    def _swap_local_bits(self, bit_a: int, bit_b: int) -> None:
        """Swap two local bits via a SWAP kernel on every shard."""
        l = self.local_qubits
        if not (bit_a < l and bit_b < l):
            raise ValueError("both bits must be local")
        if bit_a == bit_b:
            return
        with self.telemetry.tracer.span(
            "comm.staging_swap", kind="staging", bit_a=bit_a, bit_b=bit_b
        ):
            for r in range(self.num_ranks):
                shard = self.storage.get(r)
                apply_gate(
                    shard, SWAP_MATRIX, (bit_a, bit_b),
                    strategy="indexed", chunk_size=self.chunk_size,
                )
                self._sync(shard)
        qa, qb = self._qubit_at_bit(bit_a), self._qubit_at_bit(bit_b)
        self.bit_of_qubit[qa], self.bit_of_qubit[qb] = bit_b, bit_a
        self.stats.record_local_swap()
        self.kernel_cost.record(self.num_qubits, 2)

    def _apply_local_bit_permutation(
        self, transpositions: Sequence[tuple[int, int]]
    ) -> None:
        """Apply a chain of local-bit swaps as ONE gather per shard.

        Composes *transpositions* (already reflected in ``bit_of_qubit``
        by the caller) into a single memoized index permutation and
        applies it with one ``np.take`` per rank — bit-exact with the
        per-swap SWAP kernels it replaces (a pure index shuffle touches
        no amplitude arithmetic) at a fraction of the memory traffic.
        Swap/kernel counters still advance once per transposition so
        ``CommStats`` and the cost model keep their Sec. 3.4 accounting.
        """
        if not transpositions:
            return
        l = self.local_qubits
        perm_bits = list(range(l))
        for bit_a, bit_b in transpositions:
            perm_bits[bit_a], perm_bits[bit_b] = (
                perm_bits[bit_b], perm_bits[bit_a],
            )
        perm = GATHER_CACHE.bit_permutation(l, perm_bits)
        with self.telemetry.tracer.span(
            "comm.staging_swap", kind="staging", swaps=len(transpositions)
        ):
            buf = np.empty_like(self.storage.get(0))
            for r in range(self.num_ranks):
                shard = self.storage.get(r)
                np.take(shard, perm, out=buf)
                shard[:] = buf
                self._sync(shard)
        for _ in transpositions:
            self.stats.record_local_swap()
            self.kernel_cost.record(self.num_qubits, 2)

    def swap_global_set(self, new_global_qubits: Iterable[int]) -> None:
        """Global-to-local swap so that exactly *new_global_qubits* are global.

        Implements the Sec. 3.4 scheme: a free rank renumbering aligns the
        incoming qubits on the lowest global bits, local SWAP kernels move
        the outgoing qubits to the highest local bits, then one q-qubit
        group-local all-to-all (Fig. 3) exchanges the two bit ranges.
        """
        new_global = {int(q) for q in new_global_qubits}
        if len(new_global) != self.global_qubits:
            raise ValueError(
                f"need exactly {self.global_qubits} global qubits, got "
                f"{len(new_global)}"
            )
        for q in new_global:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range")
        cur_global = self.global_qubit_set()
        incoming = sorted(cur_global - new_global)  # become local
        outgoing = sorted(new_global - cur_global)  # become global
        q = len(incoming)
        if q == 0:
            return
        if q > self.local_qubits:
            raise ValueError("cannot swap more qubits than are local")
        l = self.local_qubits

        # 1. Free renumbering: incoming qubits to global bits l..l+q-1,
        #    remaining globals packed (order-preserving) above them.
        staying = sorted(cur_global & new_global, key=lambda qq: self.bit_of_qubit[qq])
        new_positions = {qq: l + i for i, qq in enumerate(incoming)}
        new_positions.update({qq: l + q + i for i, qq in enumerate(staying)})
        self._permute_global_bits(new_positions)

        # 2. Local swaps: outgoing qubits to local bits l-q..l-1, composed
        #    into one permutation gather per shard instead of one SWAP
        #    kernel per transposition.
        transpositions: list[tuple[int, int]] = []
        for i, qq in enumerate(outgoing):
            target = l - q + i
            current = self.bit_of_qubit[qq]
            if current != target:
                transpositions.append((current, target))
                other = self._qubit_at_bit(target)
                self.bit_of_qubit[qq] = target
                self.bit_of_qubit[other] = current
        self._apply_local_bit_permutation(transpositions)

        # 3. One communication step: group-local all-to-alls.
        tel = self.telemetry
        num_groups = 1 << (self.global_qubits - q)
        group_size = 1 << q
        shard_bytes = self.storage.shard_bytes
        moved_per_rank = shard_bytes * (group_size - 1) // group_size
        start = tel.tracer.now() if tel.active else 0.0
        with tel.tracer.span(
            "comm.alltoall",
            kind="comm",
            q=q,
            num_groups=num_groups,
            group_size=group_size,
            bytes=moved_per_rank * group_size * num_groups,
        ):
            self.storage.exchange_blocks(q)
        self.stats.record_alltoall(
            num_groups=num_groups,
            group_size=group_size,
            shard_bytes=shard_bytes,
        )
        if tel.active:
            tracer = tel.tracer
            end = tracer.now()
            if tracer.enabled and tracer.per_rank:
                # One lane copy per rank: every rank participates in the
                # collective for the same interval, shipping its
                # off-diagonal blocks.
                for r in range(self.num_ranks):
                    tracer.add_span(
                        "comm.alltoall",
                        kind="comm",
                        start=start,
                        end=end,
                        rank=r,
                        bytes=moved_per_rank,
                    )

        # 4. The bit ranges swapped contents: update the layout.
        for qubit in range(self.num_qubits):
            bit = self.bit_of_qubit[qubit]
            if l - q <= bit < l:
                self.bit_of_qubit[qubit] = bit + q
            elif l <= bit < l + q:
                self.bit_of_qubit[qubit] = bit - q

    def make_local(self, qubits: Iterable[int]) -> None:
        """Ensure every qubit in *qubits* is local, evicting others.

        Victims are the lowest-bit local qubits not in *qubits* — the
        paper's upper-bound choice (Sec. 3.6.1) before its local search.
        """
        qubits = set(qubits)
        needed = sorted(q for q in qubits if not self.is_local(q))
        if not needed:
            return
        if len(qubits) > self.local_qubits:
            raise ValueError(
                f"cannot make {len(qubits)} qubits local with only "
                f"{self.local_qubits} local slots"
            )
        victims_pool = sorted(
            (q for q in self.local_qubit_set() if q not in qubits),
            key=lambda q: self.bit_of_qubit[q],
        )
        victims = victims_pool[: len(needed)]
        new_global = (self.global_qubit_set() - set(needed)) | set(victims)
        self.swap_global_set(new_global)

    def swap_all_global_to_local(self) -> None:
        """Turn every global qubit local in one world all-to-all (Fig. 3)."""
        l, g = self.local_qubits, self.global_qubits
        if g == 0:
            return
        victims = sorted(
            self.local_qubit_set(), key=lambda q: self.bit_of_qubit[q]
        )[:g]
        self.swap_global_set(set(victims))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def shard_checksum(self, rank: int) -> int:
        """CRC32 of one shard's raw bytes (cheap end-to-end integrity)."""
        return zlib.crc32(np.ascontiguousarray(self.storage.get(rank)).tobytes())

    def shard_checksums(self) -> list[int]:
        """Per-rank CRC32 checksums of every shard.

        The resilience layer records these after each operation and
        re-verifies them at swap boundaries: amplitudes only ever change
        through kernels and exchanges, so a silent mismatch means the data
        was corrupted at rest or in transit.
        """
        return [self.shard_checksum(r) for r in range(self.num_ranks)]

    def norm(self) -> float:
        """2-norm across all shards."""
        total = 0.0
        for r in range(self.num_ranks):
            shard = self.storage.get(r)
            total += float(np.sum(np.abs(shard) ** 2))
        return float(np.sqrt(total))

    def __repr__(self) -> str:
        return (
            f"DistributedState(n={self.num_qubits}, local={self.local_qubits}, "
            f"ranks={self.num_ranks})"
        )
