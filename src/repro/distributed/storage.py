"""Shard storage backends for the distributed state.

A "node" owns one shard of ``2**l`` amplitudes.  Two backends implement the
same interface:

* :class:`InMemoryShards` — one numpy array per rank, all in process
  memory; the stand-in for MPI ranks with DRAM-resident state.
* :class:`DiskShards` — one raw file per rank accessed through cached
  ``np.memmap`` handles; the SSD-backed mode the paper's outlook
  describes (feasible because the whole circuit needs only two
  all-to-alls).  Block exchanges run with bounded memory.

The key collective is :meth:`ShardStorage.exchange_blocks` — the q-qubit
global-to-local swap of Fig. 3: within every group of ``2**q`` consecutive
ranks, rank ``h*2**q + s`` sends its ``b``-th block to rank ``h*2**q + b``,
which stores it as its ``s``-th block.

Pipelined mode
--------------
:meth:`ShardStorage.arm_pipeline` hands the backend a background
executor (the pipeline layer's single worker).  While armed,
:class:`DiskShards` overlaps its blocking I/O with the main thread's
compute:

* :meth:`sync` schedules an fd-level ``os.fsync`` on the executor
  instead of a synchronous whole-mapping ``msync`` — ``os.fsync``
  releases the GIL, so the writeback runs while the next kernel computes
  (``mmap.flush`` would hold the GIL and serialize);
* :meth:`get`/:meth:`prefetch` issue page-cache read-ahead of upcoming
  shards;
* :meth:`exchange_blocks` double-buffers: the block copies of pair
  ``i+1`` are read in the background while pair ``i``'s swapped blocks
  are written, and per-pair flushes collapse into one deferred fsync per
  file.

None of this changes any byte of any shard — page-cache coherence makes
reads through the shared mappings see every write immediately, and
fsync placement only affects *durability* timing, which
:meth:`drain` (called by the layer's cleanup and by :meth:`close`)
re-establishes at run boundaries.  Pipelined and serial runs are
bit-exact.
"""

from __future__ import annotations

import abc
import os
import threading
from pathlib import Path

import numpy as np

from repro.util.validation import check_power_of_two

__all__ = ["ShardStorage", "InMemoryShards", "DiskShards"]

#: Read-ahead request size: large enough to amortise syscalls, small
#: enough that one request never dominates the worker's queue.
_READ_AHEAD_STEP = 1 << 20


class ShardStorage(abc.ABC):
    """Interface shared by the in-memory and on-disk shard backends."""

    num_shards: int
    shard_size: int
    dtype: np.dtype

    @abc.abstractmethod
    def get(self, rank: int) -> np.ndarray:
        """The shard owned by *rank*, as a mutable array (view where possible)."""

    @abc.abstractmethod
    def set(self, rank: int, data: np.ndarray) -> None:
        """Replace the shard owned by *rank*."""

    @abc.abstractmethod
    def exchange_blocks(self, swap_qubits: int) -> None:
        """Fig. 3 block exchange over groups of ``2**swap_qubits`` ranks."""

    @abc.abstractmethod
    def permute_shards(self, permutation: np.ndarray) -> None:
        """Relabel shards: new shard ``i`` is old shard ``permutation[i]``.

        This is the rank renumbering of Sec. 3.5 — free on MPI, a pointer
        shuffle here.
        """

    # -- pipelining hooks (no-ops for memory-resident backends) --------
    def sync(self, shard: np.ndarray) -> None:
        """Flush *shard* to the backing store (no-op in memory)."""
        if isinstance(shard, np.memmap):
            shard.flush()

    def prefetch(self, ranks) -> None:
        """Hint that *ranks* will be read soon (no-op by default)."""

    def arm_pipeline(self, executor, *, depth: int = 1) -> None:
        """Enable background I/O overlap using *executor* (no-op here)."""

    def disarm_pipeline(self) -> None:
        """Quiesce and disable background I/O overlap (no-op here)."""

    def drain(self) -> None:
        """Block until all scheduled background I/O completed (no-op here)."""

    # ------------------------------------------------------------------
    def _check_exchange_args(self, swap_qubits: int) -> tuple[int, int, int]:
        group = 1 << swap_qubits
        if group > self.num_shards:
            raise ValueError(
                f"cannot swap {swap_qubits} qubits across {self.num_shards} shards"
            )
        block = self.shard_size // group
        if block * group != self.shard_size:
            raise ValueError("shard size not divisible into blocks")
        num_groups = self.num_shards // group
        return group, block, num_groups

    @property
    def shard_bytes(self) -> int:
        """Size of one shard in bytes."""
        return self.shard_size * np.dtype(self.dtype).itemsize


class InMemoryShards(ShardStorage):
    """All shards live in process memory as one array per rank."""

    def __init__(
        self, num_shards: int, shard_size: int, dtype=np.complex128
    ) -> None:
        check_power_of_two(num_shards, "num_shards")
        check_power_of_two(shard_size, "shard_size")
        self.num_shards = num_shards
        self.shard_size = shard_size
        self.dtype = np.dtype(dtype)
        self._shards = [
            np.zeros(shard_size, dtype=self.dtype) for _ in range(num_shards)
        ]

    def get(self, rank: int) -> np.ndarray:
        return self._shards[rank]

    def set(self, rank: int, data: np.ndarray) -> None:
        if data.shape != (self.shard_size,):
            raise ValueError(f"shard must have shape ({self.shard_size},)")
        self._shards[rank] = np.ascontiguousarray(data, dtype=self.dtype)

    def exchange_blocks(self, swap_qubits: int) -> None:
        # shard[s] block t <-> shard[t] block s within each group: the
        # all-to-all of Fig. 3 as pairwise in-place block swaps (the same
        # scheme DiskShards uses).  Diagonal blocks stay put, so the
        # traffic is the off-diagonal data actually exchanged — less than
        # half of what a stack/transpose/copy round-trip moves.
        group, block, num_groups = self._check_exchange_args(swap_qubits)
        buf = np.empty(block, dtype=self.dtype)
        for g in range(num_groups):
            base = g * group
            for s in range(group):
                shard_s = self._shards[base + s]
                for t in range(s + 1, group):
                    a = shard_s[t * block:(t + 1) * block]
                    b = self._shards[base + t][s * block:(s + 1) * block]
                    buf[:] = a
                    a[:] = b
                    b[:] = buf

    def permute_shards(self, permutation: np.ndarray) -> None:
        if sorted(permutation) != list(range(self.num_shards)):
            raise ValueError("permutation must be a bijection over ranks")
        self._shards = [self._shards[int(p)] for p in permutation]


class DiskShards(ShardStorage):
    """Shards stored as one raw file per rank, accessed via memmap.

    ``exchange_blocks`` swaps blocks pairwise so peak memory is two blocks
    regardless of state size — this is what makes SSD-resident simulation
    of states exceeding RAM practical.

    Memmap handles are opened once per file and cached; ``close()``
    releases them (idempotent — handles reopen lazily on the next
    access).  In pipelined mode (:meth:`arm_pipeline`) shard syncs and
    exchange flushes run as background fd-level fsyncs and upcoming
    shards are read ahead; see the module docstring for the overlap and
    bit-exactness arguments.
    """

    def __init__(
        self,
        num_shards: int,
        shard_size: int,
        directory: str | Path,
        dtype=np.complex128,
    ) -> None:
        check_power_of_two(num_shards, "num_shards")
        check_power_of_two(shard_size, "shard_size")
        self.num_shards = num_shards
        self.shard_size = shard_size
        self.dtype = np.dtype(dtype)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Shard *labels* indirect through this permutation so that
        # permute_shards is a pure relabeling (no file I/O), mirroring how
        # MPI rank renumbering moves no data.
        self._file_of_rank = list(range(num_shards))
        #: file index -> cached writable memmap (created lazily).
        self._handles: dict[int, np.memmap] = {}
        #: id(memmap) -> file index, for sync() routing.
        self._file_of_mm: dict[int, int] = {}
        #: file index -> O_RDWR fd for GIL-free fsync/pread.
        self._fds: dict[int, int] = {}
        #: (executor, depth) while armed, else None.
        self._pipeline: tuple[object, int] | None = None
        self._io_lock = threading.Lock()
        #: file indexes with writes awaiting a background fsync.
        self._dirty: set[int] = set()
        self._flusher = None
        #: file index -> in-flight read-ahead future.
        self._reads_inflight: dict[int, object] = {}
        #: Background-I/O counters (reported by the pipeline bench).
        self.io_stats = {
            "sync_flushes": 0,
            "async_syncs": 0,
            "read_aheads": 0,
            "exchange_prefetched_pairs": 0,
        }
        for f in range(num_shards):
            path = self._path(f)
            if not path.exists() or path.stat().st_size != self.shard_bytes:
                mm = np.memmap(path, dtype=self.dtype, mode="w+", shape=(shard_size,))
                mm[:] = 0
                mm.flush()
                del mm

    def _path(self, file_index: int) -> Path:
        return self.directory / f"shard_{file_index:06d}.dat"

    def _handle(self, file_index: int) -> np.memmap:
        """The cached writable mapping of one file (opened on first use).

        Main-thread only: background tasks touch files exclusively
        through :meth:`_fd`, so this cache needs no lock.
        """
        mm = self._handles.get(file_index)
        if mm is None:
            mm = np.memmap(
                self._path(file_index),
                dtype=self.dtype,
                mode="r+",
                shape=(self.shard_size,),
            )
            self._handles[file_index] = mm
            self._file_of_mm[id(mm)] = file_index
        return mm

    def _fd(self, file_index: int) -> int:
        """A plain fd for the file, for fsync/pread off the main thread."""
        with self._io_lock:
            fd = self._fds.get(file_index)
            if fd is None:
                fd = os.open(self._path(file_index), os.O_RDWR)
                self._fds[file_index] = fd
            return fd

    def _open(self, rank: int) -> np.memmap:
        return self._handle(self._file_of_rank[rank])

    # ------------------------------------------------------------------
    def get(self, rank: int) -> np.ndarray:
        mm = self._open(rank)
        if self._pipeline is not None and rank + 1 < self.num_shards:
            depth = self._pipeline[1]
            self.prefetch(range(rank + 1, min(rank + 1 + depth, self.num_shards)))
        return mm

    def set(self, rank: int, data: np.ndarray) -> None:
        if data.shape != (self.shard_size,):
            raise ValueError(f"shard must have shape ({self.shard_size},)")
        mm = self._open(rank)
        mm[:] = data
        self.sync(mm)

    def sync(self, shard: np.ndarray) -> None:
        """Flush one shard: synchronous msync, or a scheduled background
        fsync while the pipeline is armed (durability is re-established
        by :meth:`drain`; page-cache coherence keeps reads exact either
        way)."""
        file_index = self._file_of_mm.get(id(shard))
        if file_index is None:
            # Not one of our cached handles (e.g. a foreign memmap).
            if isinstance(shard, np.memmap):
                shard.flush()
            return
        if self._pipeline is None:
            shard.flush()
            with self._io_lock:
                self.io_stats["sync_flushes"] += 1
            return
        self._schedule_fsync(file_index)

    # -- background machinery ------------------------------------------
    def _schedule_fsync(self, file_index: int) -> None:
        executor = self._pipeline[0]
        with self._io_lock:
            self._dirty.add(file_index)
            self.io_stats["async_syncs"] += 1
            if self._flusher is None or self._flusher.done():
                self._flusher = executor.submit(self._flush_dirty)

    def _flush_dirty(self) -> None:
        while True:
            with self._io_lock:
                if not self._dirty:
                    return
                file_index = self._dirty.pop()
            os.fsync(self._fd(file_index))

    def _read_ahead(self, file_index: int) -> None:
        try:
            fd = self._fd(file_index)
            offset, remaining = 0, self.shard_bytes
            while remaining > 0:
                n = len(os.pread(fd, min(_READ_AHEAD_STEP, remaining), offset))
                if n == 0:
                    break
                offset += n
                remaining -= n
            with self._io_lock:
                self.io_stats["read_aheads"] += 1
        finally:
            with self._io_lock:
                self._reads_inflight.pop(file_index, None)

    def prefetch(self, ranks) -> None:
        """Schedule page-cache read-ahead of *ranks* (armed mode only)."""
        if self._pipeline is None:
            return
        executor = self._pipeline[0]
        for rank in ranks:
            if not 0 <= rank < self.num_shards:
                continue
            file_index = self._file_of_rank[rank]
            with self._io_lock:
                if file_index in self._reads_inflight:
                    continue
                # Submit under the lock: the task's self-removal in its
                # finally block takes the same lock, so the entry is
                # always present before it can be popped.
                self._reads_inflight[file_index] = executor.submit(
                    self._read_ahead, file_index
                )

    def arm_pipeline(self, executor, *, depth: int = 1) -> None:
        """Route syncs/reads through *executor* until disarmed."""
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self._pipeline = (executor, int(depth))

    def disarm_pipeline(self) -> None:
        """Wait out background I/O, then return to synchronous mode."""
        if self._pipeline is None:
            return
        self.drain()
        with self._io_lock:
            reads = [f for f in self._reads_inflight.values() if f is not None]
        for future in reads:
            future.result()
        self._pipeline = None

    def drain(self) -> None:
        """Block until every scheduled background flush reached the disk."""
        while True:
            with self._io_lock:
                flusher = self._flusher
            if flusher is not None:
                flusher.result()
            with self._io_lock:
                if self._dirty:
                    if self._pipeline is not None:
                        self._flusher = self._pipeline[0].submit(
                            self._flush_dirty
                        )
                        continue
                    leftovers = sorted(self._dirty)
                    self._dirty.clear()
                elif self._flusher is None or self._flusher.done():
                    return
                else:
                    continue
            for file_index in leftovers:
                os.fsync(self._fd(file_index))

    # ------------------------------------------------------------------
    def exchange_blocks(self, swap_qubits: int) -> None:
        group, block, num_groups = self._check_exchange_args(swap_qubits)
        if self._pipeline is None:
            for g in range(num_groups):
                base = g * group
                for s in range(group):
                    mm_s = self._open(base + s)
                    for b in range(s + 1, group):
                        mm_b = self._open(base + b)
                        tmp = np.array(mm_s[b * block : (b + 1) * block])
                        mm_s[b * block : (b + 1) * block] = mm_b[s * block : (s + 1) * block]
                        mm_b[s * block : (s + 1) * block] = tmp
                        mm_b.flush()
                    mm_s.flush()
            return
        self._exchange_blocks_pipelined(group, block, num_groups)

    def _exchange_blocks_pipelined(
        self, group: int, block: int, num_groups: int
    ) -> None:
        """Double-buffered exchange: read pair ``i+1`` while writing pair
        ``i``, one deferred fsync per file instead of one msync per pair.

        Safe because each ``(file, block-range)`` slot is read once and
        written once, by its unique pair — prefetching a later pair's
        reads can never observe an earlier pair's unwritten data, and
        the mapping/pread views are page-cache coherent.
        """
        executor = self._pipeline[0]
        pairs = [
            (g * group + s, g * group + b, s, b)
            for g in range(num_groups)
            for s in range(group)
            for b in range(s + 1, group)
        ]
        if not pairs:
            return
        # Pre-open every handle on the main thread: the background reader
        # only indexes the caches, it never mutates them.
        for rank in range(self.num_shards):
            self._open(rank)
        touched: set[int] = set()
        nxt = executor.submit(self._read_pair, pairs[0], block)
        for i, (s_rank, b_rank, s, b) in enumerate(pairs):
            from_s, from_b = nxt.result()
            if i + 1 < len(pairs):
                nxt = executor.submit(self._read_pair, pairs[i + 1], block)
                with self._io_lock:
                    self.io_stats["exchange_prefetched_pairs"] += 1
            mm_s = self._handles[self._file_of_rank[s_rank]]
            mm_b = self._handles[self._file_of_rank[b_rank]]
            mm_s[b * block : (b + 1) * block] = from_b
            mm_b[s * block : (s + 1) * block] = from_s
            touched.add(self._file_of_rank[s_rank])
            touched.add(self._file_of_rank[b_rank])
        for file_index in sorted(touched):
            self._schedule_fsync(file_index)

    def _read_pair(self, pair: tuple[int, int, int, int], block: int):
        """Copy out the two blocks pair ``(s, b)`` will swap (worker side)."""
        s_rank, b_rank, s, b = pair
        mm_s = self._handles[self._file_of_rank[s_rank]]
        mm_b = self._handles[self._file_of_rank[b_rank]]
        return (
            np.array(mm_s[b * block : (b + 1) * block]),
            np.array(mm_b[s * block : (s + 1) * block]),
        )

    def permute_shards(self, permutation: np.ndarray) -> None:
        if sorted(permutation) != list(range(self.num_shards)):
            raise ValueError("permutation must be a bijection over ranks")
        self._file_of_rank = [self._file_of_rank[int(p)] for p in permutation]

    def close(self) -> None:
        """Flush and release cached handles and fds (idempotent).

        The next access transparently reopens, so ``close()`` is a
        resource release, not an end-of-life marker.
        """
        self.disarm_pipeline()
        for mm in self._handles.values():
            mm.flush()
        self._handles.clear()
        self._file_of_mm.clear()
        with self._io_lock:
            fds, self._fds = list(self._fds.values()), {}
        for fd in fds:
            os.close(fd)
