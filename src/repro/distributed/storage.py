"""Shard storage backends for the distributed state.

A "node" owns one shard of ``2**l`` amplitudes.  Two backends implement the
same interface:

* :class:`InMemoryShards` — one numpy array per rank, all in process
  memory; the stand-in for MPI ranks with DRAM-resident state.
* :class:`DiskShards` — one ``.npy`` memmap file per rank; the SSD-backed
  mode the paper's outlook describes (feasible because the whole circuit
  needs only two all-to-alls).  Block exchanges run with bounded memory.

The key collective is :meth:`ShardStorage.exchange_blocks` — the q-qubit
global-to-local swap of Fig. 3: within every group of ``2**q`` consecutive
ranks, rank ``h*2**q + s`` sends its ``b``-th block to rank ``h*2**q + b``,
which stores it as its ``s``-th block.
"""

from __future__ import annotations

import abc
from pathlib import Path

import numpy as np

from repro.util.validation import check_power_of_two

__all__ = ["ShardStorage", "InMemoryShards", "DiskShards"]


class ShardStorage(abc.ABC):
    """Interface shared by the in-memory and on-disk shard backends."""

    num_shards: int
    shard_size: int
    dtype: np.dtype

    @abc.abstractmethod
    def get(self, rank: int) -> np.ndarray:
        """The shard owned by *rank*, as a mutable array (view where possible)."""

    @abc.abstractmethod
    def set(self, rank: int, data: np.ndarray) -> None:
        """Replace the shard owned by *rank*."""

    @abc.abstractmethod
    def exchange_blocks(self, swap_qubits: int) -> None:
        """Fig. 3 block exchange over groups of ``2**swap_qubits`` ranks."""

    @abc.abstractmethod
    def permute_shards(self, permutation: np.ndarray) -> None:
        """Relabel shards: new shard ``i`` is old shard ``permutation[i]``.

        This is the rank renumbering of Sec. 3.5 — free on MPI, a pointer
        shuffle here.
        """

    # ------------------------------------------------------------------
    def _check_exchange_args(self, swap_qubits: int) -> tuple[int, int, int]:
        group = 1 << swap_qubits
        if group > self.num_shards:
            raise ValueError(
                f"cannot swap {swap_qubits} qubits across {self.num_shards} shards"
            )
        block = self.shard_size // group
        if block * group != self.shard_size:
            raise ValueError("shard size not divisible into blocks")
        num_groups = self.num_shards // group
        return group, block, num_groups

    @property
    def shard_bytes(self) -> int:
        """Size of one shard in bytes."""
        return self.shard_size * np.dtype(self.dtype).itemsize


class InMemoryShards(ShardStorage):
    """All shards live in process memory as one array per rank."""

    def __init__(
        self, num_shards: int, shard_size: int, dtype=np.complex128
    ) -> None:
        check_power_of_two(num_shards, "num_shards")
        check_power_of_two(shard_size, "shard_size")
        self.num_shards = num_shards
        self.shard_size = shard_size
        self.dtype = np.dtype(dtype)
        self._shards = [
            np.zeros(shard_size, dtype=self.dtype) for _ in range(num_shards)
        ]

    def get(self, rank: int) -> np.ndarray:
        return self._shards[rank]

    def set(self, rank: int, data: np.ndarray) -> None:
        if data.shape != (self.shard_size,):
            raise ValueError(f"shard must have shape ({self.shard_size},)")
        self._shards[rank] = np.ascontiguousarray(data, dtype=self.dtype)

    def exchange_blocks(self, swap_qubits: int) -> None:
        group, block, num_groups = self._check_exchange_args(swap_qubits)
        for g in range(num_groups):
            ranks = range(g * group, (g + 1) * group)
            stacked = np.stack([self._shards[r] for r in ranks])
            # stacked[s, b*block + j] -> new[b, s*block + j]: a transpose of
            # the (rank, block) axes — the all-to-all of Fig. 3.
            blocks = stacked.reshape(group, group, block)
            swapped = blocks.swapaxes(0, 1).reshape(group, self.shard_size)
            for i, r in enumerate(ranks):
                self._shards[r] = np.ascontiguousarray(swapped[i])

    def permute_shards(self, permutation: np.ndarray) -> None:
        if sorted(permutation) != list(range(self.num_shards)):
            raise ValueError("permutation must be a bijection over ranks")
        self._shards = [self._shards[int(p)] for p in permutation]


class DiskShards(ShardStorage):
    """Shards stored as one raw file per rank, accessed via memmap.

    ``exchange_blocks`` swaps blocks pairwise so peak memory is two blocks
    regardless of state size — this is what makes SSD-resident simulation
    of states exceeding RAM practical.
    """

    def __init__(
        self,
        num_shards: int,
        shard_size: int,
        directory: str | Path,
        dtype=np.complex128,
    ) -> None:
        check_power_of_two(num_shards, "num_shards")
        check_power_of_two(shard_size, "shard_size")
        self.num_shards = num_shards
        self.shard_size = shard_size
        self.dtype = np.dtype(dtype)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Shard *labels* indirect through this permutation so that
        # permute_shards is a pure relabeling (no file I/O), mirroring how
        # MPI rank renumbering moves no data.
        self._file_of_rank = list(range(num_shards))
        for f in range(num_shards):
            path = self._path(f)
            if not path.exists() or path.stat().st_size != self.shard_bytes:
                mm = np.memmap(path, dtype=self.dtype, mode="w+", shape=(shard_size,))
                mm[:] = 0
                mm.flush()
                del mm

    def _path(self, file_index: int) -> Path:
        return self.directory / f"shard_{file_index:06d}.dat"

    def _open(self, rank: int, mode: str = "r+") -> np.memmap:
        return np.memmap(
            self._path(self._file_of_rank[rank]),
            dtype=self.dtype,
            mode=mode,
            shape=(self.shard_size,),
        )

    def get(self, rank: int) -> np.ndarray:
        return self._open(rank)

    def set(self, rank: int, data: np.ndarray) -> None:
        if data.shape != (self.shard_size,):
            raise ValueError(f"shard must have shape ({self.shard_size},)")
        mm = self._open(rank)
        mm[:] = data
        mm.flush()

    def exchange_blocks(self, swap_qubits: int) -> None:
        group, block, num_groups = self._check_exchange_args(swap_qubits)
        for g in range(num_groups):
            base = g * group
            for s in range(group):
                mm_s = self._open(base + s)
                for b in range(s + 1, group):
                    mm_b = self._open(base + b)
                    tmp = np.array(mm_s[b * block : (b + 1) * block])
                    mm_s[b * block : (b + 1) * block] = mm_b[s * block : (s + 1) * block]
                    mm_b[s * block : (s + 1) * block] = tmp
                    mm_b.flush()
                mm_s.flush()

    def permute_shards(self, permutation: np.ndarray) -> None:
        if sorted(permutation) != list(range(self.num_shards)):
            raise ValueError("permutation must be a bijection over ranks")
        self._file_of_rank = [self._file_of_rank[int(p)] for p in permutation]

    def close(self) -> None:
        """No-op (memmaps are opened per call); kept for API symmetry."""
