"""Checkpoint / restart for distributed schedule execution.

The paper's record run held 0.5 PB across 8,192 nodes for ~10 minutes;
production runs at that scale checkpoint.  A checkpoint here captures
everything needed to resume a schedule mid-program:

* the shard data (written shard-by-shard, never materialising the full
  state),
* the layout (``bit_of_qubit``),
* the index of the next operation in the schedule's op stream,
* the accumulated communication and kernel statistics.

Periodic checkpointing during execution is a
:class:`~repro.runtime.CheckpointLayer` on the
:class:`~repro.runtime.ExecutionEngine`;
:meth:`CheckpointManager.run_with_checkpoints` remains as a deprecation
shim over that stack, and :meth:`resume` continues after a (simulated or
real) failure.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.distributed.comm import CommStats
from repro.distributed.state import DistributedState
from repro.kernels.cost import KernelCostModel
from repro.scheduling.program import Schedule

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Writes and restores distributed-state checkpoints in a directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def _meta_path(self) -> Path:
        return self.directory / "checkpoint.json"

    def has_checkpoint(self) -> bool:
        """True when a complete checkpoint exists here."""
        return self._meta_path.exists()

    def clear(self) -> None:
        """Delete any checkpoint in this directory (meta file first)."""
        self._meta_path.unlink(missing_ok=True)
        for path in self.directory.glob("ckpt_shard_*.npy"):
            path.unlink()

    @staticmethod
    def initial_state_for(schedule: Schedule) -> DistributedState:
        """The fresh state a schedule starts from (shared restart path)."""
        return DistributedState(
            schedule.num_qubits,
            schedule.local_qubits,
            init=schedule.initial_state,
            initial_global_qubits=schedule.initial_global_qubits or None,
        )

    def save(self, state: DistributedState, next_op_index: int) -> int:
        """Write a checkpoint (atomically: meta file last); returns bytes."""
        written = 0
        for r in range(state.num_ranks):
            shard = np.asarray(state.storage.get(r))
            path = self.directory / f"ckpt_shard_{r:06d}.npy"
            np.save(path, shard)
            written += path.stat().st_size
        meta = {
            "num_qubits": state.num_qubits,
            "local_qubits": state.local_qubits,
            "bit_of_qubit": list(state.bit_of_qubit),
            "next_op_index": int(next_op_index),
            "stats": {
                "alltoall_steps": state.stats.alltoall_steps,
                "group_alltoall_calls": state.stats.group_alltoall_calls,
                "bytes_on_network": state.stats.bytes_on_network,
                "rank_renumberings": state.stats.rank_renumberings,
                "local_swap_kernels": state.stats.local_swap_kernels,
            },
            "kernel_cost": {
                "total_flops": state.kernel_cost.total_flops,
                "total_bytes": state.kernel_cost.total_bytes,
                "diagonal_calls": state.kernel_cost.diagonal_calls,
                "calls_by_k": {
                    str(k): v for k, v in state.kernel_cost.calls_by_k.items()
                },
            },
        }
        self._meta_path.write_text(json.dumps(meta))
        return written + self._meta_path.stat().st_size

    def load(self, *, state_factory=None) -> tuple[DistributedState, int]:
        """Restore ``(state, next_op_index)`` from the checkpoint.

        ``state_factory`` builds the vessel the shards are loaded into;
        this is how a run whose state lives on a custom
        :class:`~repro.distributed.ShardStorage` backend (e.g.
        ``DiskShards``) gets its backend back after a restart instead of
        silently reverting to in-memory shards.  The vessel's dimensions
        must match the checkpoint's.
        """
        if not self.has_checkpoint():
            raise FileNotFoundError(f"no checkpoint in {self.directory}")
        meta = json.loads(self._meta_path.read_text())
        if state_factory is not None:
            state = state_factory()
            if (
                state.num_qubits != meta["num_qubits"]
                or state.local_qubits != meta["local_qubits"]
            ):
                raise ValueError(
                    f"state_factory built a ({state.num_qubits}, "
                    f"{state.local_qubits})-qubit state but the checkpoint "
                    f"holds ({meta['num_qubits']}, {meta['local_qubits']})"
                )
        else:
            state = DistributedState(meta["num_qubits"], meta["local_qubits"])
        for r in range(state.num_ranks):
            shard = np.load(self.directory / f"ckpt_shard_{r:06d}.npy")
            state.storage.set(r, shard)
        state.bit_of_qubit = list(meta["bit_of_qubit"])
        stats = CommStats()
        for key, value in meta["stats"].items():
            setattr(stats, key, value)
        state.stats = stats
        cost = KernelCostModel()
        cost.total_flops = meta["kernel_cost"]["total_flops"]
        cost.total_bytes = meta["kernel_cost"]["total_bytes"]
        cost.diagonal_calls = meta["kernel_cost"]["diagonal_calls"]
        cost.calls_by_k = {
            int(k): v for k, v in meta["kernel_cost"]["calls_by_k"].items()
        }
        state.kernel_cost = cost
        return state, int(meta["next_op_index"])

    # ------------------------------------------------------------------
    def run_with_checkpoints(
        self,
        schedule: Schedule,
        *,
        every: int = 8,
        fail_after: int | None = None,
    ) -> DistributedState:
        """Execute *schedule*, checkpointing every *every* operations.

        .. deprecated::
            Thin shim over :class:`repro.runtime.ExecutionEngine` with a
            :class:`~repro.runtime.CheckpointLayer`; build that stack
            directly.

        ``fail_after`` aborts (RuntimeError) after that many operations —
        the failure-injection hook the tests use to prove resumability.
        """
        warnings.warn(
            "run_with_checkpoints is deprecated; run the schedule through "
            "repro.runtime.ExecutionEngine with a CheckpointLayer",
            DeprecationWarning,
            stacklevel=2,
        )
        state = self.initial_state_for(schedule)
        return self._execute(schedule, state, 0, every, fail_after)

    def resume(self, schedule: Schedule, *, every: int = 8) -> DistributedState:
        """Continue a checkpointed run to completion."""
        state, next_op = self.load()
        return self._execute(schedule, state, next_op, every, None)

    def _execute(
        self,
        schedule: Schedule,
        state: DistributedState,
        start_index: int,
        every: int,
        fail_after: int | None,
    ) -> DistributedState:
        from repro.runtime import CheckpointLayer, ExecutionEngine

        layer = CheckpointLayer(self, every=every, fail_after=fail_after)
        engine = ExecutionEngine(schedule, use_plan=False, layers=[layer])  # lint: allow-engine-direct
        return engine.run(state=state, start_index=start_index).state
