"""Bit-manipulation primitives for state-vector index arithmetic.

Applying a k-qubit gate to an n-qubit state vector (Sec. 3.2 of the paper)
requires splitting every state index into the ``x`` bits (positions of the
target qubits) and the ``c`` bits (everything else)::

    index = c_{n-k-1} x_{i_{k-1}} ... c_j ... x_{i_1} ... c_0

The functions here perform exactly those (de)compositions, vectorised over
numpy integer arrays so kernels never loop in Python over 2**n entries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "is_power_of_two",
    "bit_length_of_power_of_two",
    "extract_bits",
    "gather_bits",
    "scatter_bits",
    "insert_zero_bits",
    "expand_index",
    "set_bits",
    "clear_bits",
]


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_length_of_power_of_two(value: int) -> int:
    """Return ``log2(value)`` for a power-of-two *value*.

    Raises :class:`ValueError` otherwise; used to recover qubit counts from
    state-vector lengths.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def extract_bits(indices: np.ndarray | int, positions: Sequence[int]) -> np.ndarray | int:
    """Gather the bits of *indices* at *positions* into a compact integer.

    ``positions[0]`` becomes bit 0 of the result, ``positions[1]`` bit 1, and
    so on (the paper's ``x = x_{i_{k-1}} ... x_{i_1} x_{i_0}`` with
    ``positions = [i_0, i_1, ..., i_{k-1}]``).
    """
    result = np.zeros_like(np.asarray(indices))
    for out_bit, pos in enumerate(positions):
        result |= ((np.asarray(indices) >> pos) & 1) << out_bit
    if np.isscalar(indices):
        return int(result)
    return result


# ``gather_bits`` is the historical name used throughout the kernels.
gather_bits = extract_bits


def scatter_bits(values: np.ndarray | int, positions: Sequence[int]) -> np.ndarray | int:
    """Inverse of :func:`extract_bits`: spread compact bits to *positions*.

    Bit ``j`` of *values* lands at bit ``positions[j]`` of the result; all
    other bits are zero.
    """
    result = np.zeros_like(np.asarray(values))
    for in_bit, pos in enumerate(positions):
        result |= ((np.asarray(values) >> in_bit) & 1) << pos
    if np.isscalar(values):
        return int(result)
    return result


def insert_zero_bits(compact: np.ndarray | int, positions: Sequence[int]) -> np.ndarray | int:
    """Expand *compact* indices by inserting zero bits at *positions*.

    *positions* must be sorted ascending.  This maps the paper's ``c`` index
    substring (an integer in ``[0, 2**(n-k))``) to the full state index with
    the target-qubit bits cleared.  Vectorised over numpy arrays.
    """
    result = np.asarray(compact).copy()
    for pos in positions:  # ascending order keeps earlier insertions valid
        low_mask = (1 << pos) - 1
        low = result & low_mask
        high = (result >> pos) << (pos + 1)
        result = high | low
    if np.isscalar(compact):
        return int(result)
    return result


def expand_index(
    c: np.ndarray | int, x: np.ndarray | int, positions: Sequence[int]
) -> np.ndarray | int:
    """Combine a ``c`` substring and an ``x`` substring into full indices.

    *positions* are the target-qubit bit locations (ascending).  ``c`` indexes
    the non-target bits, ``x`` the target bits; the result is the full
    state-vector index ``c_{n-k-1} x ... c_0`` of Sec. 3.2.
    """
    sorted_pos = sorted(positions)
    base = insert_zero_bits(c, sorted_pos)
    # Scatter x using the *original* position order so that bit j of x
    # corresponds to qubit positions[j].
    return base | scatter_bits(x, list(positions))


def set_bits(indices: np.ndarray | int, positions: Iterable[int]) -> np.ndarray | int:
    """Return *indices* with the bits at *positions* set to 1."""
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    result = np.asarray(indices) | mask
    if np.isscalar(indices):
        return int(result)
    return result


def clear_bits(indices: np.ndarray | int, positions: Iterable[int]) -> np.ndarray | int:
    """Return *indices* with the bits at *positions* cleared to 0."""
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    result = np.asarray(indices) & ~mask
    if np.isscalar(indices):
        return int(result)
    return result
