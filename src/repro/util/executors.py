"""Process-wide registry of background executors pending shutdown.

The pipeline layer (and anything else that owns a small worker pool)
creates short-lived ``ThreadPoolExecutor`` instances whose lifetime is
tied to a run, not to a ``with`` block.  Registering them here gives two
guarantees:

* an ``atexit`` hook shuts down every executor that is still alive at
  interpreter exit, so a crashed run can never block exit on a
  non-daemon worker;
* the ``daemon-thread-leak`` lint rule recognises
  :func:`register_executor` as a cleanup registration, the same way it
  recognises ``atexit.register`` — owners that both register *and*
  shut down in ``finalize`` stay lint-clean without suppressions.

The registry holds strong references only until :func:`unregister_executor`
(the normal path: the owner shuts the pool down itself and unregisters);
``shutdown_registered`` is the exit-time sweep.
"""

from __future__ import annotations

import atexit
import threading

__all__ = [
    "register_executor",
    "unregister_executor",
    "registered_executors",
    "shutdown_registered",
]

_registry_lock = threading.Lock()
_registry: dict[int, object] = {}
_atexit_installed = False


def register_executor(executor) -> None:
    """Track *executor* for exit-time shutdown (idempotent)."""
    global _atexit_installed
    with _registry_lock:
        _registry[id(executor)] = executor
        if not _atexit_installed:
            atexit.register(shutdown_registered)
            _atexit_installed = True


def unregister_executor(executor) -> None:
    """Stop tracking *executor* (idempotent; the owner shut it down)."""
    with _registry_lock:
        _registry.pop(id(executor), None)


def registered_executors() -> list:
    """Executors currently tracked (snapshot, for tests/diagnostics)."""
    with _registry_lock:
        return list(_registry.values())


def shutdown_registered(*, wait: bool = True) -> int:
    """Shut down and drop every tracked executor; returns the count."""
    with _registry_lock:
        executors = list(_registry.values())
        _registry.clear()
    for executor in executors:
        executor.shutdown(wait=wait)
    return len(executors)
