"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.bits import is_power_of_two

__all__ = ["check_power_of_two", "check_qubit_indices", "check_unitary"]


def check_power_of_two(value: int, name: str = "value") -> int:
    """Validate that *value* is a positive power of two and return it."""
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value


def check_qubit_indices(qubits: Sequence[int], num_qubits: int) -> tuple[int, ...]:
    """Validate gate target qubits: in range and pairwise distinct."""
    qubits = tuple(int(q) for q in qubits)
    for q in qubits:
        if not 0 <= q < num_qubits:
            raise ValueError(f"qubit index {q} out of range for {num_qubits} qubits")
    if len(set(qubits)) != len(qubits):
        raise ValueError(f"duplicate qubit indices in {qubits}")
    return qubits


def check_unitary(matrix: np.ndarray, *, atol: float = 1e-10) -> np.ndarray:
    """Validate that *matrix* is square, power-of-two sized, and unitary."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"gate matrix must be square, got shape {matrix.shape}")
    check_power_of_two(matrix.shape[0], "gate dimension")
    identity = np.eye(matrix.shape[0])
    if not np.allclose(matrix.conj().T @ matrix, identity, atol=atol):
        raise ValueError("gate matrix is not unitary")
    return matrix
