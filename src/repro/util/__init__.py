"""Low-level utilities shared across the simulator stack.

The helpers here are deliberately dependency-free (numpy only) so every
other subpackage can import them without cycles:

* :mod:`repro.util.bits` — bit-manipulation primitives used by the gate
  kernels and the distributed layout (index gather/scatter, bit insertion,
  pdep/pext-style operations).
* :mod:`repro.util.rng` — seeded random-number helpers so every circuit
  instance and test is reproducible.
* :mod:`repro.util.flops` — FLOP and byte accounting for gate kernels,
  following the counting conventions of Sec. 3.1 of the paper.
* :mod:`repro.util.validation` — argument-checking helpers with consistent
  error messages.
"""

from repro.util.bits import (
    bit_length_of_power_of_two,
    clear_bits,
    expand_index,
    extract_bits,
    gather_bits,
    insert_zero_bits,
    is_power_of_two,
    scatter_bits,
    set_bits,
)
from repro.util.executors import (
    register_executor,
    registered_executors,
    shutdown_registered,
    unregister_executor,
)
from repro.util.flops import GateCost, bytes_touched, gate_flops, operational_intensity
from repro.util.rng import ensure_rng
from repro.util.validation import (
    check_power_of_two,
    check_qubit_indices,
    check_unitary,
)

__all__ = [
    "GateCost",
    "bit_length_of_power_of_two",
    "bytes_touched",
    "check_power_of_two",
    "check_qubit_indices",
    "check_unitary",
    "clear_bits",
    "ensure_rng",
    "expand_index",
    "extract_bits",
    "gate_flops",
    "gather_bits",
    "insert_zero_bits",
    "is_power_of_two",
    "operational_intensity",
    "register_executor",
    "registered_executors",
    "scatter_bits",
    "set_bits",
    "shutdown_registered",
    "unregister_executor",
]
