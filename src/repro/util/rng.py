"""Seeded random-number helpers.

Every stochastic component (circuit generation, random test states, the
clustering local search) accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``; :func:`ensure_rng` normalises
all three so instances are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "random_statevector"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_statevector(
    num_qubits: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Return a Haar-ish random normalised state vector of ``2**num_qubits``.

    Gaussian real/imaginary parts followed by normalisation — exactly the
    distribution used for the paper's correctness checks; adequate for
    testing kernels and communication schemes.
    """
    rng = ensure_rng(seed)
    dim = 1 << num_qubits
    vec = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
    vec /= np.linalg.norm(vec)
    return vec.astype(np.complex128)
