"""Runtime lock instrumentation: acquisition order, counts and wait time.

The static lock-order rule (:mod:`repro.staticcheck.lint.rules.lock_order`)
derives the *possible* lock-acquisition graph from nested ``with`` blocks;
this module records the graph a process *actually* walked.  Every shared
lock in the concurrent layer (the service caches, the gather-table cache,
``plan_for``'s compile lock) is a :class:`TrackedLock` — a named wrapper
around a :class:`threading.Lock`/:class:`threading.RLock` that, when the
process-wide :data:`LOCK_TRACKER` is enabled, records

* per-lock acquisition counts and cumulative wait time (mirrored into a
  bound :class:`~repro.telemetry.metrics.MetricsRegistry` as
  ``lock.acquire.count{name=}`` / ``lock.wait.seconds{name=}``), and
* the set of ordered pairs ``(held, acquired)`` — an edge for every lock
  already held by the acquiring thread, i.e. exactly the transitive
  nesting edges the static rule predicts.

Tracking is off by default and the disabled fast path is one attribute
check, so wrapped locks cost nothing in production.  Arm it with
``simulate --sanitize`` / ``repro trace`` (or ``LOCK_TRACKER.enable()``);
tests cross-check :meth:`LockTracker.observed_edges` against the static
graph on a concurrent service stress run.
"""

from __future__ import annotations

import threading
import time

__all__ = ["LOCK_TRACKER", "LockTracker", "TrackedLock"]


class LockTracker:
    """Process-wide recorder of lock acquisitions and their nesting.

    Thread-safe: per-thread held-lock stacks live in thread-local
    storage; the shared tallies are guarded by a private leaf lock that
    is never held while acquiring a tracked lock (so the tracker itself
    cannot deadlock or create edges).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._state_lock = threading.Lock()
        self._tls = threading.local()
        self._edges: set[tuple[str, str]] = set()
        self._acquire_counts: dict[str, int] = {}
        self._wait_seconds: dict[str, float] = {}
        self._metrics = None
        self._recorder = None

    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Start recording acquisitions (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; accumulated observations are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded edge and counter.

        Held-lock stacks of *other* threads are thread-local and cannot
        be cleared from here; reset while the process is quiescent (no
        tracked lock held), which is how the tests use it.
        """
        with self._state_lock:
            self._edges.clear()
            self._acquire_counts.clear()
            self._wait_seconds.clear()

    def bind_metrics(self, registry) -> None:
        """Stream per-lock counters into *registry* (``None`` detaches).

        Mirrored keys: ``lock.acquire.count{name=}`` (counter) and
        ``lock.wait.seconds{name=}`` (histogram of per-acquire wait).
        """
        with self._state_lock:
            self._metrics = (
                registry if registry is not None and registry.enabled else None
            )

    def bind_recorder(self, recorder) -> None:
        """Stream lock events into a flight recorder (``None`` detaches).

        Each acquisition appends a ``kind="lock"`` record (lock name +
        wait seconds) to the bound
        :class:`~repro.telemetry.recorder.FlightRecorder`, so a
        postmortem bundle shows which guarded sections a dying job was
        contending on.
        """
        with self._state_lock:
            self._recorder = recorder

    # ------------------------------------------------------------------
    def _held(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def on_acquired(self, name: str, wait_seconds: float) -> None:
        """Record that the calling thread acquired *name*."""
        stack = self._held()
        with self._state_lock:
            self._acquire_counts[name] = self._acquire_counts.get(name, 0) + 1
            self._wait_seconds[name] = (
                self._wait_seconds.get(name, 0.0) + wait_seconds
            )
            for held in stack:
                if held != name:
                    self._edges.add((held, name))
            if self._metrics is not None:
                self._metrics.counter("lock.acquire.count", name=name).inc()
                self._metrics.histogram(
                    "lock.wait.seconds", name=name
                ).observe(wait_seconds)
            recorder = self._recorder
        if recorder is not None:
            # Outside the state lock: the ring has its own leaf lock.
            recorder.record("lock", name=name, wait_seconds=wait_seconds)
        stack.append(name)

    def on_released(self, name: str) -> None:
        """Record that the calling thread released *name*."""
        stack = self._held()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break

    # ------------------------------------------------------------------
    def observed_edges(self) -> frozenset[tuple[str, str]]:
        """Ordered ``(held, acquired)`` pairs observed so far."""
        with self._state_lock:
            return frozenset(self._edges)

    def stats(self) -> dict:
        """JSON-ready snapshot of counts, waits and edges."""
        with self._state_lock:
            return {
                "acquire_counts": dict(self._acquire_counts),
                "wait_seconds": dict(self._wait_seconds),
                "edges": sorted(self._edges),
            }


#: The process-wide tracker every TrackedLock reports to by default.
LOCK_TRACKER = LockTracker()


class TrackedLock:
    """A named lock wrapper that reports to a :class:`LockTracker`.

    Wraps an :class:`threading.RLock` by default (pass ``lock=`` for a
    plain mutex).  Supports the context-manager protocol plus
    ``acquire``/``release``, which is all the repo's guarded sections
    use.  When the tracker is disabled the overhead is one attribute
    check per acquire/release.
    """

    __slots__ = ("name", "_lock", "_tracker")

    def __init__(self, name: str, *, lock=None, tracker=None) -> None:
        self.name = name
        self._lock = threading.RLock() if lock is None else lock
        self._tracker = LOCK_TRACKER if tracker is None else tracker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracker = self._tracker
        if not tracker.enabled:
            return self._lock.acquire(blocking, timeout)
        t0 = time.perf_counter()
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            tracker.on_acquired(self.name, time.perf_counter() - t0)
        return acquired

    def release(self) -> None:
        self._lock.release()
        if self._tracker.enabled:
            self._tracker.on_released(self.name)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self.name!r})"
