"""FLOP and memory-traffic accounting for gate kernels.

Follows the counting conventions of Sec. 3.1 of the paper:

* a complex multiply costs 4 real multiplies + 2 real adds = 6 FLOP,
* a complex add costs 2 FLOP,
* applying a dense k-qubit gate computes, per output entry, a scalar
  product of dimension ``2**k``: ``2**k`` complex multiplies and
  ``2**k - 1`` complex adds, i.e. ``8 * 2**k - 2`` FLOP per entry.

For ``k = 1`` this gives the paper's ``2*(4[mul] + 2[add]) + 2[add] = 14``
FLOP per complex entry of the output state vector.  The in-place kernel
touches each complex entry twice (one 16-byte load + one 16-byte store),
so the operational intensity of a single-qubit gate is ``14/32 < 1/2`` —
the memory-bound regime highlighted in the paper's rooflines (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "COMPLEX_MUL_FLOPS",
    "COMPLEX_ADD_FLOPS",
    "COMPLEX128_BYTES",
    "gate_flops",
    "bytes_touched",
    "operational_intensity",
    "GateCost",
]

COMPLEX_MUL_FLOPS = 6
COMPLEX_ADD_FLOPS = 2
COMPLEX128_BYTES = 16


def gate_flops(num_qubits: int, gate_qubits: int, *, diagonal: bool = False) -> int:
    """Total FLOPs to apply a *gate_qubits*-qubit gate to ``2**num_qubits``.

    Diagonal gates need one complex multiply per entry instead of a full
    scalar product.
    """
    dim = 1 << num_qubits
    if diagonal:
        return dim * COMPLEX_MUL_FLOPS
    per_entry = (1 << gate_qubits) * COMPLEX_MUL_FLOPS + ((1 << gate_qubits) - 1) * COMPLEX_ADD_FLOPS
    return dim * per_entry


def bytes_touched(num_qubits: int, *, in_place: bool = True, single_precision: bool = False) -> int:
    """Memory traffic of one gate application over the full state vector.

    The in-place kernel (Sec. 3.2) reads and writes each complex entry once;
    the two-vector variant additionally streams the output vector allocation
    (read-for-ownership is ignored, as in the paper's ``< 1/2`` bound).
    """
    entry = COMPLEX128_BYTES // (2 if single_precision else 1)
    dim = 1 << num_qubits
    traffic = 2 * dim * entry  # one load + one store per entry
    if not in_place:
        traffic = 2 * dim * entry  # load input + store output (same total)
    return traffic


def operational_intensity(gate_qubits: int, *, diagonal: bool = False) -> float:
    """FLOP/byte of a k-qubit kernel, independent of the state size.

    ``operational_intensity(1) == 14/32 == 0.4375`` and
    ``operational_intensity(4) == 126/32 ≈ 3.94`` — the two x-positions of
    the kernels in the paper's roofline plots.
    """
    flops = gate_flops(gate_qubits, gate_qubits, diagonal=diagonal) / (1 << gate_qubits)
    return flops / (2 * COMPLEX128_BYTES)


@dataclass(frozen=True)
class GateCost:
    """FLOP/byte cost summary of one gate (or fused cluster) application."""

    flops: int
    bytes: int

    @property
    def intensity(self) -> float:
        """Operational intensity in FLOP/byte."""
        return self.flops / self.bytes

    @staticmethod
    def for_gate(num_qubits: int, gate_qubits: int, *, diagonal: bool = False) -> "GateCost":
        """Cost of applying one gate to an ``num_qubits``-qubit state."""
        return GateCost(
            flops=gate_flops(num_qubits, gate_qubits, diagonal=diagonal),
            bytes=bytes_touched(num_qubits),
        )

    def __add__(self, other: "GateCost") -> "GateCost":
        return GateCost(self.flops + other.flops, self.bytes + other.bytes)
