"""Out-of-core (disk-resident) state vectors.

The paper's outlook (Sec. 5): because scheduling reduces a full supremacy
circuit to ~2 all-to-alls, the state vector can live on solid-state drives
rather than DRAM.  :class:`OutOfCoreStateVector` realises that mode: it is
a thin facade over :class:`repro.distributed.DistributedState` backed by
:class:`repro.distributed.DiskShards`, so gate dispatch, specialization
and swaps behave identically to the in-memory distributed state while
block exchanges stream through bounded memory.
"""

from __future__ import annotations

from pathlib import Path

from repro.distributed.state import DistributedState
from repro.distributed.storage import DiskShards
from repro.statevector.state import StateVector

__all__ = ["OutOfCoreStateVector"]


class OutOfCoreStateVector(DistributedState):
    """A state vector sharded across files on disk.

    Parameters
    ----------
    num_qubits:
        Total qubits; the files jointly hold ``2**num_qubits`` amplitudes.
    local_qubits:
        Amplitudes per file (``2**local_qubits``); also the largest gate
        footprint applicable without an all-to-all pass over the files.
    directory:
        Where the shard files live.  Reusing a directory with matching
        sizes reuses its contents only if ``init=None``.
    init:
        ``"zero"``, ``"plus"``, or ``None`` to keep existing file contents
        (resume after a previous session).
    initial_global_qubits:
        Optional starting global qubit set (a schedule's
        ``initial_global_qubits``), forwarded to
        :class:`~repro.distributed.DistributedState` so a schedule whose
        first stage adopts a non-identity layout runs on disk unchanged.
    """

    def __init__(
        self,
        num_qubits: int,
        local_qubits: int,
        directory: str | Path,
        *,
        init: str | None = "zero",
        initial_global_qubits=None,
    ) -> None:
        storage = DiskShards(
            1 << (num_qubits - local_qubits), 1 << local_qubits, directory
        )
        if init is None:
            # Bypass DistributedState init by initialising to zero-state
            # semantics first, then restoring nothing — instead we call the
            # parent with "zero" and immediately reload is wasteful; so we
            # replicate the minimal parent setup inline.
            self.num_qubits = num_qubits
            self.local_qubits = local_qubits
            self.global_qubits = num_qubits - local_qubits
            self.storage = storage
            self.bit_of_qubit = list(range(num_qubits))
            from repro.distributed.comm import CommStats
            from repro.kernels.cost import KernelCostModel

            from repro.kernels import DEFAULT_CHUNK
            from repro.telemetry.runtime import NULL_TELEMETRY

            self.chunk_size = DEFAULT_CHUNK
            self.stats = CommStats()
            self.kernel_cost = KernelCostModel()
            self.telemetry = NULL_TELEMETRY
            if initial_global_qubits is not None:
                raise ValueError(
                    "initial_global_qubits requires init='zero'/'plus' — "
                    "with init=None the on-disk layout is whatever the "
                    "previous session left"
                )
        else:
            super().__init__(
                num_qubits,
                local_qubits,
                storage=storage,
                init=init,
                initial_global_qubits=initial_global_qubits,
            )
        self.directory = Path(directory)

    def close(self) -> None:
        """Release the underlying shard files' handles (idempotent)."""
        self.storage.close()

    @classmethod
    def from_statevector_on_disk(
        cls, state: StateVector, local_qubits: int, directory: str | Path
    ) -> "OutOfCoreStateVector":
        """Spill an in-memory state vector to disk shards."""
        out = cls(state.num_qubits, local_qubits, directory)
        import numpy as np

        offsets = np.arange(1 << local_qubits, dtype=np.int64)
        for r in range(out.num_ranks):
            phys = (r << local_qubits) | offsets
            shard = out.storage.get(r)
            shard[:] = state.data[phys]
            out._sync(shard)
        return out
