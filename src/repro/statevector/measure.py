"""Sampling and projective measurement on state vectors."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.statevector.state import StateVector
from repro.util.rng import ensure_rng

__all__ = ["sample_counts", "sample_bitstrings", "measure_qubit"]


def sample_bitstrings(
    state: StateVector, shots: int, seed=None
) -> np.ndarray:
    """Draw *shots* basis-state indices from the output distribution.

    This is the sampling task quantum-supremacy experiments perform; the
    classical simulator reproduces it exactly from the amplitudes.
    """
    if shots <= 0:
        raise ValueError(f"shots must be positive, got {shots}")
    rng = ensure_rng(seed)
    probs = state.probabilities()
    probs = probs / probs.sum()  # guard against rounding drift
    return rng.choice(len(probs), size=shots, p=probs)


def sample_counts(state: StateVector, shots: int, seed=None) -> dict[int, int]:
    """Histogram of :func:`sample_bitstrings` outcomes."""
    outcomes = sample_bitstrings(state, shots, seed)
    return dict(Counter(int(x) for x in outcomes))


def measure_qubit(
    state: StateVector, qubit: int, seed=None
) -> tuple[int, StateVector]:
    """Projective measurement of one qubit.

    Returns ``(outcome, collapsed_state)``; the input state is not
    modified.  The collapsed state is renormalised.
    """
    rng = ensure_rng(seed)
    p_one = state.expectation_bit(qubit)
    outcome = int(rng.random() < p_one)
    collapsed = state.copy()
    n = state.num_qubits
    psi = collapsed.data.reshape((2,) * n)
    axis = n - 1 - qubit
    # Zero out the branch that was not observed, then renormalise.
    index = [slice(None)] * n
    index[axis] = 1 - outcome
    psi[tuple(index)] = 0.0
    collapsed.normalize()
    return outcome, collapsed
