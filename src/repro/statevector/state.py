"""The :class:`StateVector` container."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.gates.gate import Gate
from repro.kernels import apply_gate
from repro.util.bits import bit_length_of_power_of_two, extract_bits
from repro.util.validation import check_qubit_indices

__all__ = ["StateVector"]


class StateVector:
    """A ``2**n`` complex amplitude vector with little-endian qubit order.

    Amplitude index bit ``q`` holds the computational-basis value of qubit
    ``q``.  The backing array is always C-contiguous ``complex128`` (or
    ``complex64`` when ``single_precision=True`` — the paper's Sec. 5 notes
    46 qubits become feasible at single precision with the same memory).
    """

    def __init__(
        self,
        num_qubits: int,
        data: np.ndarray | None = None,
        *,
        init: str = "zero",
        single_precision: bool = False,
    ) -> None:
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        dtype = np.complex64 if single_precision else np.complex128
        dim = 1 << self.num_qubits
        if data is not None:
            data = np.ascontiguousarray(data, dtype=dtype)
            if data.shape != (dim,):
                raise ValueError(
                    f"data must have shape ({dim},), got {data.shape}"
                )
            self.data = data
        elif init == "zero":
            self.data = np.zeros(dim, dtype=dtype)
            self.data[0] = 1.0
        elif init == "plus":
            # Uniform superposition: the Sec. 3.6 shortcut replacing the
            # cycle-0 Hadamard layer with direct initialisation.
            self.data = np.full(dim, 2.0 ** (-self.num_qubits / 2), dtype=dtype)
        else:
            raise ValueError(f"unknown init {init!r} (expected 'zero' or 'plus')")

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_gate(
        self,
        gate: Gate,
        *,
        strategy: str = "auto",
        chunk_size: int | None = None,
    ) -> "StateVector":
        """Apply *gate* in place. Returns self for chaining."""
        apply_gate(
            self.data, gate.matrix, gate.qubits, strategy=strategy, chunk_size=chunk_size
        )
        return self

    def apply_circuit(self, gates, **kwargs) -> "StateVector":
        """Apply every gate of an iterable/:class:`Circuit` in order."""
        for gate in gates:
            self.apply_gate(gate, **kwargs)
        return self

    # ------------------------------------------------------------------
    # Quantum-information queries
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """The 2-norm of the amplitude vector (1.0 for a valid state)."""
        return float(np.linalg.norm(self.data))

    def normalize(self) -> "StateVector":
        """Rescale to unit norm in place."""
        n = self.norm()
        if n == 0:
            raise ValueError("cannot normalize the zero vector")
        self.data /= n
        return self

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Outcome probabilities, optionally marginalised onto *qubits*.

        With ``qubits=None`` returns all ``2**n`` probabilities (little-
        endian index order); otherwise returns ``2**len(qubits)`` marginal
        probabilities where result bit ``j`` is ``qubits[j]``.
        """
        probs = np.abs(self.data) ** 2
        if qubits is None:
            return probs
        qubits = check_qubit_indices(qubits, self.num_qubits)
        n, k = self.num_qubits, len(qubits)
        tensor = probs.reshape((2,) * n)
        other_axes = tuple(
            n - 1 - q for q in range(n) if q not in set(qubits)
        )
        marginal = tensor.sum(axis=other_axes)
        # Remaining axes are the target qubits sorted descending; reorder
        # so result bit j corresponds to qubits[j].
        remaining = sorted(qubits, reverse=True)
        flat = marginal.reshape(-1)
        out = np.empty(1 << k)
        src_positions = [k - 1 - remaining.index(q) for q in qubits]
        idx = np.arange(1 << k)
        src = np.zeros_like(idx)
        for j, pos in enumerate(src_positions):
            src |= ((idx >> j) & 1) << pos
        out[idx] = flat[src]
        return out

    def probability_of(self, bitstring: int) -> float:
        """Probability of one computational-basis outcome."""
        if not 0 <= bitstring < self.data.shape[0]:
            raise ValueError(f"bitstring {bitstring} out of range")
        return float(np.abs(self.data[bitstring]) ** 2)

    def amplitude(self, bitstring: int) -> complex:
        """Complex amplitude of one computational-basis state."""
        return complex(self.data[bitstring])

    def inner(self, other: "StateVector") -> complex:
        """The inner product ``<self|other>``."""
        self._check_compatible(other)
        return complex(np.vdot(self.data, other.data))

    def fidelity(self, other: "StateVector") -> float:
        """``|<self|other>|**2``."""
        return abs(self.inner(other)) ** 2

    def expectation_bit(self, qubit: int) -> float:
        """Probability that *qubit* measures as 1."""
        probs = self.probabilities((qubit,))
        return float(probs[1])

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def copy(self) -> "StateVector":
        """Deep copy."""
        return StateVector(self.num_qubits, self.data.copy())

    def allclose(self, other: "StateVector", *, atol: float = 1e-10) -> bool:
        """Amplitude-wise comparison (no global-phase forgiveness)."""
        self._check_compatible(other)
        return bool(np.allclose(self.data, other.data, atol=atol))

    def equal_up_to_global_phase(
        self, other: "StateVector", *, atol: float = 1e-10
    ) -> bool:
        """True when the states differ only by a global phase."""
        self._check_compatible(other)
        return bool(math.isclose(self.fidelity(other), 1.0, abs_tol=atol))

    def _check_compatible(self, other: "StateVector") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError(
                f"qubit-count mismatch: {self.num_qubits} vs {other.num_qubits}"
            )

    def __repr__(self) -> str:
        return f"StateVector(num_qubits={self.num_qubits})"

    @staticmethod
    def basis_state(num_qubits: int, bitstring: int) -> "StateVector":
        """The computational-basis state ``|bitstring>``."""
        state = StateVector(num_qubits)
        state.data[0] = 0.0
        state.data[bitstring] = 1.0
        return state

    def extract_bit_probability(self, indices: np.ndarray, qubit: int) -> np.ndarray:
        """Bit values of *qubit* for an array of basis-state indices."""
        return extract_bits(indices, [qubit])

    @staticmethod
    def from_array(data: np.ndarray) -> "StateVector":
        """Wrap an existing amplitude array (copied to complex128)."""
        num_qubits = bit_length_of_power_of_two(len(data))
        return StateVector(num_qubits, np.asarray(data))
