"""The single-node circuit simulator."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuit.circuit import Circuit
from repro.kernels.cost import KernelCostModel
from repro.statevector.state import StateVector

__all__ = ["Simulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Output of one :meth:`Simulator.run` call."""

    state: StateVector
    wall_seconds: float
    cost: KernelCostModel = field(default_factory=KernelCostModel)

    @property
    def gflops(self) -> float:
        """Achieved GFLOPS over the run (kernel FLOPs / wall time)."""
        return self.cost.gflops(max(self.wall_seconds, 1e-12))


class Simulator:
    """Applies circuits to a state vector with cost accounting.

    Parameters
    ----------
    num_qubits:
        State size.  ``2**num_qubits * 16`` bytes of memory are allocated.
    initial_state:
        ``"zero"`` (``|0...0>``) or ``"plus"`` (uniform superposition — the
        Sec. 3.6 shortcut replacing the initial Hadamard layer).
    strategy / chunk_size:
        Kernel strategy passed through to :func:`repro.kernels.apply_gate`.
    single_precision:
        Use complex64 amplitudes (Sec. 5: enables one more qubit for the
        same memory).
    """

    def __init__(
        self,
        num_qubits: int,
        *,
        initial_state: str = "zero",
        strategy: str = "auto",
        chunk_size: int | None = None,
        single_precision: bool = False,
    ) -> None:
        self.num_qubits = num_qubits
        self.strategy = strategy
        self.chunk_size = chunk_size
        self._initial_state = initial_state
        self._single_precision = single_precision

    def new_state(self) -> StateVector:
        """Fresh initial state per the configured initialisation."""
        return StateVector(
            self.num_qubits,
            init=self._initial_state,
            single_precision=self._single_precision,
        )

    def run(
        self,
        circuit: Circuit,
        *,
        state: StateVector | None = None,
    ) -> SimulationResult:
        """Apply *circuit* and return the final state plus cost accounting.

        When *state* is given it is mutated in place (useful for staged
        execution); otherwise a fresh initial state is allocated.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits, simulator has "
                f"{self.num_qubits}"
            )
        if state is None:
            state = self.new_state()
        cost = KernelCostModel()
        start = time.perf_counter()
        for gate in circuit:
            state.apply_gate(gate, strategy=self.strategy, chunk_size=self.chunk_size)
            cost.record(
                self.num_qubits, gate.num_qubits, diagonal=gate.is_diagonal
            )
        elapsed = time.perf_counter() - start
        return SimulationResult(state=state, wall_seconds=elapsed, cost=cost)
