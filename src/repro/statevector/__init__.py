"""Single-node state-vector simulation substrate.

* :mod:`repro.statevector.state` — :class:`StateVector`: a ``2**n`` complex
  amplitude array with gate application, probabilities and fidelity.
* :mod:`repro.statevector.simulator` — :class:`Simulator`: runs circuits or
  schedules over a :class:`StateVector` with cost accounting.
* :mod:`repro.statevector.measure` — sampling and projective measurement.
* :mod:`repro.statevector.outofcore` — :class:`OutOfCoreStateVector`: the
  disk-shard backend motivated by the paper's outlook (two all-to-alls per
  circuit make SSD-resident state vectors practical).
"""

from repro.statevector.measure import measure_qubit, sample_counts
from repro.statevector.simulator import Simulator
from repro.statevector.state import StateVector

__all__ = [
    "OutOfCoreStateVector",
    "Simulator",
    "StateVector",
    "measure_qubit",
    "sample_counts",
]


def __getattr__(name: str):
    # OutOfCoreStateVector builds on the distributed layer, which itself
    # imports repro.statevector.state — import it lazily to break the
    # package-level cycle.
    if name == "OutOfCoreStateVector":
        from repro.statevector.outofcore import OutOfCoreStateVector

        return OutOfCoreStateVector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
