"""Pauli-string expectation values.

The local-interaction workloads the paper contrasts with supremacy
circuits (variational ansätze, chemistry) consume their results as
expectation values ``<psi| P |psi>`` of Pauli strings.  Z-only strings
are diagonal (a signed sum over probabilities — no state copy);
general strings apply the Pauli as a monomial gate to one scratch copy.
"""

from __future__ import annotations

import numpy as np

from repro.gates.gate import Gate
from repro.gates.matrices import X_MATRIX, Y_MATRIX, Z_MATRIX
from repro.statevector.state import StateVector
from repro.util.bits import extract_bits

__all__ = ["PauliString", "expectation_value"]

_PAULIS = {"X": X_MATRIX, "Y": Y_MATRIX, "Z": Z_MATRIX}


class PauliString:
    """A Pauli operator like ``Z0 X3 Y5`` with an optional coefficient.

    Construct from a mapping or a compact label::

        PauliString({0: "Z", 3: "X"})
        PauliString.from_label("Z0 X3", coefficient=0.5)
    """

    def __init__(
        self, factors: dict[int, str], *, coefficient: float = 1.0
    ) -> None:
        self.factors: dict[int, str] = {}
        for qubit, letter in factors.items():
            letter = letter.upper()
            if letter == "I":
                continue
            if letter not in _PAULIS:
                raise ValueError(f"unknown Pauli letter {letter!r}")
            if qubit < 0:
                raise ValueError(f"negative qubit index {qubit}")
            self.factors[int(qubit)] = letter
        self.coefficient = float(coefficient)

    @classmethod
    def from_label(cls, label: str, *, coefficient: float = 1.0) -> "PauliString":
        """Parse ``"Z0 X3 Y12"`` (whitespace-separated letter+index)."""
        factors: dict[int, str] = {}
        for token in label.split():
            letter, index = token[0], token[1:]
            if not index.isdigit():
                raise ValueError(f"malformed Pauli token {token!r}")
            if int(index) in factors:
                raise ValueError(f"duplicate qubit in {label!r}")
            factors[int(index)] = letter
        return cls(factors, coefficient=coefficient)

    @property
    def is_diagonal(self) -> bool:
        """True for Z-only strings (computable without a state copy)."""
        return all(letter == "Z" for letter in self.factors.values())

    def support(self) -> tuple[int, ...]:
        """Qubits the string acts on, ascending."""
        return tuple(sorted(self.factors))

    def __repr__(self) -> str:
        body = " ".join(
            f"{letter}{q}" for q, letter in sorted(self.factors.items())
        )
        return f"PauliString({body or 'I'}, coeff={self.coefficient})"


def expectation_value(state: StateVector, pauli: PauliString) -> float:
    """``coeff * <psi| P |psi>`` (real for Hermitian Pauli strings).

    Diagonal (Z-only) strings reduce to a parity-signed probability sum;
    general strings use one scratch copy and an inner product.
    """
    for qubit in pauli.support():
        if qubit >= state.num_qubits:
            raise ValueError(
                f"Pauli acts on qubit {qubit}, state has {state.num_qubits}"
            )
    if not pauli.factors:
        return pauli.coefficient  # identity

    if pauli.is_diagonal:
        probs = state.probabilities()
        indices = np.arange(probs.shape[0])
        parity = np.zeros_like(indices)
        for qubit in pauli.support():
            parity ^= extract_bits(indices, [qubit])
        signs = 1.0 - 2.0 * parity
        return pauli.coefficient * float((signs * probs).sum())

    scratch = state.copy()
    for qubit, letter in pauli.factors.items():
        scratch.apply_gate(Gate(letter.lower(), (qubit,), _PAULIS[letter]))
    value = state.inner(scratch)
    return pauli.coefficient * float(value.real)
