"""repro — reproduction of Häner & Steiger, "0.5 Petabyte Simulation of a
45-Qubit Quantum Circuit" (SC 2017).

A distributed state-vector quantum-circuit simulator with the paper's
full optimization stack:

* tuned/generated k-qubit gate kernels (:mod:`repro.kernels`,
  :mod:`repro.codegen`),
* node-level parallel execution (:mod:`repro.parallel`),
* a (simulated-) MPI multi-node layer with global-to-local swaps and
  global-gate specialization (:mod:`repro.distributed`),
* the circuit scheduler: stage finding, gate clustering, swap-point
  adjustment and qubit mapping (:mod:`repro.scheduling`),
* supremacy circuit generation (:mod:`repro.circuit`),
* calibrated performance models of Edison / Cori II reproducing the
  paper's evaluation (:mod:`repro.perfmodel`),
* output-distribution analysis (:mod:`repro.analysis`), and
* fault injection + fault-tolerant supervised execution
  (:mod:`repro.resilience`).

Quickstart::

    from repro import (
        generate_supremacy_circuit, schedule_circuit, SchedulerConfig,
        DistributedSimulator,
    )

    circuit = generate_supremacy_circuit(16, depth=12, seed=0)
    schedule = schedule_circuit(circuit, SchedulerConfig(local_qubits=12))
    result = DistributedSimulator(16, 12).run_schedule(schedule)
    print(schedule.summary(), result.comm.alltoall_steps)
"""

from repro.circuit import (
    Circuit,
    GridSpec,
    circuit_stats,
    generate_supremacy_circuit,
    ghz_circuit,
    grid_for_qubits,
    hardware_efficient_ansatz,
    random_brickwork_circuit,
)
from repro.distributed import (
    DiskShards,
    DistributedSimulator,
    DistributedState,
    InMemoryShards,
)
from repro.gates import Gate, fuse_gates, gate_matrix
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilientExecutor,
    RetryPolicy,
    run_chaos_suite,
)
from repro.scheduling import (
    Schedule,
    SchedulerConfig,
    baseline_global_gates,
    schedule_circuit,
)
from repro.statevector import (
    OutOfCoreStateVector,
    Simulator,
    StateVector,
    sample_counts,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "DiskShards",
    "DistributedSimulator",
    "DistributedState",
    "FaultPlan",
    "FaultSpec",
    "Gate",
    "GridSpec",
    "InMemoryShards",
    "OutOfCoreStateVector",
    "ResilientExecutor",
    "RetryPolicy",
    "Schedule",
    "SchedulerConfig",
    "Simulator",
    "StateVector",
    "__version__",
    "baseline_global_gates",
    "circuit_stats",
    "fuse_gates",
    "gate_matrix",
    "generate_supremacy_circuit",
    "ghz_circuit",
    "grid_for_qubits",
    "hardware_efficient_ansatz",
    "random_brickwork_circuit",
    "run_chaos_suite",
    "sample_counts",
    "schedule_circuit",
]
