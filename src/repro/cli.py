"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``generate`` — write a supremacy circuit to the text format;
* ``schedule`` — schedule a circuit and print the summary (optionally
  saving the program as JSON for reuse);
* ``simulate`` — run a circuit (single-node or distributed) and report
  entropy / sample counts; distributed runs can checkpoint and resume
  via ``--checkpoint-dir`` / ``--checkpoint-every``;
* ``check`` — statically verify a schedule (structure, specialization,
  coverage, unitarity, comm plan) and print a ranked findings report;
* ``lint`` — run the source lint framework
  (:mod:`repro.staticcheck.lint`) over the tree: nine rules, per-rule
  severity, baseline grandfathering, text/JSON/SARIF output;
* ``project`` — price a configuration on the Cori II models and print a
  Table-2-style profile;
* ``chaos`` — run the fault-injection scenario sweep (or a custom
  fault-plan JSON) and print the recovery report;
* ``trace`` — run a schedule with full telemetry and export a
  Chrome-trace/Perfetto JSON (one lane per rank), plus the
  predicted-vs-actual performance report;
* ``serve`` — run the multi-tenant simulation job service on a local
  TCP socket (admission control, weighted-fair queueing, cross-request
  plan/result caching);
* ``submit`` — submit one circuit-simulation job to a running ``serve``
  instance and print the result (or query ``--stats``);
* ``top`` — poll a serving instance's ``/statusz`` and render a
  refreshing per-tenant table (queued/running/done, p95 queue wait,
  rejection reasons).

``serve --metrics-port`` adds the live observability plane (Prometheus
``/metrics``, ``/healthz``, ``/statusz``); ``serve --postmortem-dir``
dumps flight-recorder JSONL bundles for failed/timed-out jobs and on
SIGTERM.  ``submit`` mints a ``trace_id`` on the wire so one id
correlates client output, server spans, flight-recorder records and
metrics.

``simulate --sanitize`` arms the runtime shard sanitizer (NaN/Inf, norm
conservation, checksum divergence); ``simulate --strict`` refuses to
execute a schedule whose static check reports errors; ``simulate
--trace/--metrics`` records spans/metrics during a plain distributed run.
"""

from __future__ import annotations

import argparse
import math
import os
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed quantum-supremacy-circuit simulator "
        "(Häner & Steiger, SC 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a supremacy circuit")
    gen.add_argument("--qubits", type=int, required=True)
    gen.add_argument("--depth", type=int, default=25)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--no-trailing", action="store_true",
                     help="omit the trailing single-qubit layer")
    gen.add_argument("--output", type=str, default="-",
                     help="output file ('-' for stdout)")

    sch = sub.add_parser("schedule", help="schedule a circuit")
    sch.add_argument("--circuit", type=str, help="circuit text file "
                     "(default: generate per --qubits/--depth/--seed)")
    sch.add_argument("--qubits", type=int)
    sch.add_argument("--depth", type=int, default=25)
    sch.add_argument("--seed", type=int, default=0)
    sch.add_argument("--local-qubits", type=int, required=True)
    sch.add_argument("--kmax", type=int, default=5)
    sch.add_argument("--absorb", action="store_true",
                     help="absorb diagonal gates into cluster matrices")
    sch.add_argument("--save", type=str, help="write the schedule JSON here")

    sim = sub.add_parser("simulate", help="simulate a circuit")
    sim.add_argument("--qubits", type=int, required=True)
    sim.add_argument("--depth", type=int, default=12)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--local-qubits", type=int,
                     help="distributed run with this split (default: single node)")
    sim.add_argument("--shots", type=int, default=0,
                     help="also sample this many bitstrings")
    sim.add_argument("--checkpoint-dir", type=str,
                     help="checkpoint the distributed run here (resumes an "
                     "existing checkpoint automatically)")
    sim.add_argument("--checkpoint-every", type=int, default=8,
                     help="ops between checkpoints (with --checkpoint-dir)")
    sim.add_argument("--sanitize", action="store_true",
                     help="run the shard sanitizer: NaN/Inf, norm "
                     "conservation, checksum divergence (distributed only)")
    sim.add_argument("--strict", action="store_true",
                     help="statically verify the schedule first; refuse "
                     "to execute on any static-check error")
    sim.add_argument("--trace", type=str, metavar="FILE",
                     help="record telemetry spans and write a Chrome-trace "
                     "JSON here (plain distributed runs only)")
    sim.add_argument("--fusion-kmax", type=int, default=None,
                     metavar="K",
                     help="widest qubit union the plan compiler may refuse "
                          "adjacent ops into one batched kernel over "
                          "(default: autotuned; 0 disables refusion)")
    sim.add_argument("--plan-stats", action="store_true",
                     help="print the compiled execution plan summary and "
                     "kernel-table cache statistics after a plain "
                     "distributed run")
    sim.add_argument("--metrics", action="store_true",
                     help="collect and print the metrics registry "
                     "(plain distributed runs only)")
    sim.add_argument("--pipeline", action="store_true",
                     help="overlap compute with background table prefetch "
                     "and shard I/O (composes with --sanitize, --trace, "
                     "--checkpoint-dir; biggest win with --storage-dir)")
    sim.add_argument("--pipeline-depth", type=int, default=2,
                     help="ops of lookahead prefetch (with --pipeline)")
    sim.add_argument("--storage-dir", type=str,
                     help="out-of-core run: keep the state in DiskShards "
                     "files under this directory")

    chk = sub.add_parser(
        "check", help="statically verify a schedule and its comm plan"
    )
    chk.add_argument("--schedule", type=str,
                     help="schedule JSON file (default: schedule a "
                     "generated circuit per --qubits/--depth/--seed)")
    chk.add_argument("--qubits", type=int)
    chk.add_argument("--depth", type=int, default=12)
    chk.add_argument("--seed", type=int, default=0)
    chk.add_argument("--local-qubits", type=int)
    chk.add_argument("--kmax", type=int, default=5)
    chk.add_argument("--absorb", action="store_true",
                     help="absorb diagonal gates into cluster matrices")
    chk.add_argument("--no-unitarity", action="store_true",
                     help="skip the (dense) fused-matrix unitarity pass")
    chk.add_argument("--no-comm", action="store_true",
                     help="skip comm-plan derivation and verification")
    chk.add_argument("--strict", action="store_true",
                     help="also fail (exit 1) on warnings")

    lnt = sub.add_parser(
        "lint", help="lint the source tree with the repro rule catalogue"
    )
    lnt.add_argument("paths", nargs="*", default=["src"],
                     help="files/directories to lint (default: src)")
    lnt.add_argument("--format", choices=["text", "json", "sarif"],
                     default="text", help="output format")
    lnt.add_argument("--rule", action="append", default=None,
                     metavar="NAME",
                     help="run only this rule (repeatable)")
    lnt.add_argument("--baseline", type=str,
                     default="tools/lint_baseline.json",
                     help="baseline file grandfathering known findings")
    lnt.add_argument("--no-baseline", action="store_true",
                     help="ignore the baseline file")
    lnt.add_argument("--update-baseline", action="store_true",
                     help="rewrite the baseline from the current findings "
                     "and exit 0")
    lnt.add_argument("--strict", action="store_true",
                     help="also fail (exit 1) on non-baselined warnings")
    lnt.add_argument("--show-baselined", action="store_true",
                     help="also print baselined findings (text format)")
    lnt.add_argument("--list-rules", action="store_true",
                     help="print the rule catalogue and exit")

    proj = sub.add_parser("project", help="project onto Cori II (Table 2 style)")
    proj.add_argument("--qubits", type=int, required=True)
    proj.add_argument("--nodes", type=int, required=True)
    proj.add_argument("--depth", type=int, default=25)
    proj.add_argument("--kmax", type=int, default=4)

    exp = sub.add_parser(
        "experiments", help="regenerate a paper table/figure series"
    )
    exp.add_argument(
        "name",
        choices=["table1", "table2", "fig5-depth", "fig5-size", "fig8"],
        help="which artefact to regenerate",
    )
    exp.add_argument("--qubits", type=int, default=36,
                     help="circuit size for fig8")

    cha = sub.add_parser(
        "chaos", help="fault-injection sweep with bit-exact recovery checks"
    )
    cha.add_argument("--qubits", type=int, default=12)
    cha.add_argument("--depth", type=int, default=16)
    cha.add_argument("--seed", type=int, default=0)
    cha.add_argument("--local-qubits", type=int, default=10)
    cha.add_argument("--kmax", type=int, default=4)
    cha.add_argument("--checkpoint-every", type=int, default=2)
    cha.add_argument("--max-retries", type=int, default=3)
    cha.add_argument("--max-restarts", type=int, default=2)
    cha.add_argument("--plan", type=str,
                     help="run one custom fault-plan JSON file instead of "
                     "the built-in scenario sweep")
    cha.add_argument("--workdir", type=str,
                     help="checkpoint workspace (default: a temp directory)")
    cha.add_argument("--real-sleep", action="store_true",
                     help="actually sleep through backoff/stall delays "
                     "(default: account them without waiting)")

    trc = sub.add_parser(
        "trace", help="run with full telemetry; export Chrome-trace JSON "
        "and a predicted-vs-actual report"
    )
    trc.add_argument("output", type=str,
                     help="Chrome-trace JSON output path (open in "
                     "ui.perfetto.dev or chrome://tracing)")
    trc.add_argument("--qubits", type=int, required=True)
    trc.add_argument("--depth", type=int, default=12)
    trc.add_argument("--seed", type=int, default=0)
    trc.add_argument("--local-qubits", type=int, required=True)
    trc.add_argument("--kmax", type=int, default=4)
    trc.add_argument("--absorb", action="store_true",
                     help="absorb diagonal gates into cluster matrices")
    trc.add_argument("--jsonl", type=str, metavar="FILE",
                     help="also write the span event stream as JSONL")
    trc.add_argument("--flamegraph", action="store_true",
                     help="also print the flamegraph-style text summary")
    trc.add_argument("--tolerance", type=float, default=4.0,
                     help="relative per-stage deviation tolerance for the "
                     "predicted-vs-actual report")

    srv = sub.add_parser(
        "serve", help="run the multi-tenant simulation job service"
    )
    srv.add_argument("--host", type=str, default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7717)
    srv.add_argument("--workers", type=int, default=4,
                     help="concurrent simulation jobs (worker threads)")
    srv.add_argument("--max-state-bytes", type=int, default=1 << 34,
                     help="admission: reject jobs whose full statevector "
                     "exceeds this many bytes")
    srv.add_argument("--max-predicted-seconds", type=float, default=120.0,
                     help="admission: reject jobs the perf model prices "
                     "above this many seconds")
    srv.add_argument("--max-queue-depth", type=int, default=256,
                     help="admission: reject once this many jobs queue")
    srv.add_argument("--max-tenant-active", type=int, default=64,
                     help="admission: per-tenant queued+running bound")
    srv.add_argument("--weight", action="append", default=[],
                     metavar="TENANT=W",
                     help="fair-share weight for a tenant (repeatable)")
    srv.add_argument("--metrics-port", type=int, default=None,
                     help="also serve the live observability plane "
                     "(/metrics, /healthz, /statusz) on this port")
    srv.add_argument("--postmortem-dir", type=str, default=None,
                     help="dump flight-recorder JSONL bundles for "
                     "failed/timed-out jobs (and on SIGTERM) here")

    sbm = sub.add_parser(
        "submit", help="submit one job to a running `repro serve`"
    )
    sbm.add_argument("--host", type=str, default="127.0.0.1")
    sbm.add_argument("--port", type=int, default=7717)
    sbm.add_argument("--circuit", type=str,
                     help="circuit text file (default: generate per "
                     "--qubits/--depth/--seed)")
    sbm.add_argument("--qubits", type=int)
    sbm.add_argument("--depth", type=int, default=12)
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--local-qubits", type=int,
                     help="distributed split (required unless --stats)")
    sbm.add_argument("--kmax", type=int, default=5)
    sbm.add_argument("--tenant", type=str, default="default")
    sbm.add_argument("--priority", type=int, default=0)
    sbm.add_argument("--shots", type=int, default=0)
    sbm.add_argument("--timeout", type=float,
                     help="per-job execution timeout in seconds")
    sbm.add_argument("--no-wait", action="store_true",
                     help="return the job id immediately instead of "
                     "waiting for the result")
    sbm.add_argument("--no-result-cache", action="store_true",
                     help="bypass the completed-result cache")
    sbm.add_argument("--stats", action="store_true",
                     help="print service statistics instead of submitting")
    sbm.add_argument("--trace-id", type=str, default=None,
                     help="correlation id for the job (minted client-side "
                     "when omitted; threads through spans, flight-recorder "
                     "records and the response)")
    sbm.add_argument("--pipeline", action="store_true",
                     help="run the job with pipelined lookahead prefetch")

    top = sub.add_parser(
        "top", help="live per-tenant view of a serving `repro serve`"
    )
    top.add_argument("--host", type=str, default="127.0.0.1")
    top.add_argument("--metrics-port", type=int, required=True,
                     help="the service's --metrics-port")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("-n", "--iterations", type=int, default=0,
                     help="stop after N refreshes (0 = run until Ctrl-C)")
    return parser


def _cmd_generate(args) -> int:
    from repro.circuit import circuit_to_text, generate_supremacy_circuit

    circuit = generate_supremacy_circuit(
        args.qubits,
        args.depth,
        seed=args.seed,
        include_trailing_singles=not args.no_trailing,
    )
    text = circuit_to_text(circuit)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(circuit)} gates to {args.output}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.circuit import circuit_from_text, generate_supremacy_circuit
    from repro.scheduling import SchedulerConfig, schedule_circuit

    if args.circuit:
        with open(args.circuit, encoding="utf-8") as fh:
            circuit = circuit_from_text(fh.read())
    elif args.qubits:
        circuit = generate_supremacy_circuit(args.qubits, args.depth, seed=args.seed)
    else:
        print("error: provide --circuit or --qubits", file=sys.stderr)
        return 2
    schedule = schedule_circuit(
        circuit,
        SchedulerConfig(
            local_qubits=args.local_qubits,
            kmax=args.kmax,
            absorb_diagonals=args.absorb,
        ),
    )
    for key, value in schedule.summary().items():
        print(f"{key:>22}: {value}")
    if args.save:
        from repro.io import save_schedule_json

        save_schedule_json(schedule, args.save)
        print(f"{'saved to':>22}: {args.save}")
    return 0


def _cmd_check(args) -> int:
    from repro.staticcheck import verify_schedule

    if args.schedule:
        from repro.io import load_schedule_json

        try:
            schedule = load_schedule_json(args.schedule, validate=False)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load {args.schedule}: {exc}", file=sys.stderr)
            return 2
    elif args.qubits and args.local_qubits:
        from repro.circuit import generate_supremacy_circuit
        from repro.scheduling import SchedulerConfig, schedule_circuit

        circuit = generate_supremacy_circuit(
            args.qubits, args.depth, seed=args.seed
        )
        schedule = schedule_circuit(
            circuit,
            SchedulerConfig(
                local_qubits=args.local_qubits,
                kmax=args.kmax,
                absorb_diagonals=args.absorb,
            ),
        )
    else:
        print("error: provide --schedule or --qubits with --local-qubits",
              file=sys.stderr)
        return 2
    report = verify_schedule(
        schedule,
        check_unitarity=not args.no_unitarity,
        check_comm=not args.no_comm,
    )
    print(report.format())
    if not report.passed:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.staticcheck.lint import (
        Baseline,
        default_rules,
        registered_rules,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        for name, cls in sorted(registered_rules().items()):
            print(f"{name:<20} {cls.severity:<9} {cls.description}")
        return 0
    try:
        rules = default_rules(args.rule)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    baseline = None
    if not args.no_baseline and not args.update_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, KeyError) as exc:
            print(f"error: bad baseline: {exc}", file=sys.stderr)
            return 2
    report = run_lint(args.paths, rules=rules, baseline=baseline)
    if args.update_baseline:
        count = write_baseline(args.baseline, report.findings)
        print(f"wrote {count} finding(s) to {args.baseline}")
        return 0
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report, show_baselined=args.show_baselined))
    return report.exit_code(strict=args.strict)


def _cmd_simulate(args) -> int:
    from repro.analysis import porter_thomas_entropy_nats, shannon_entropy
    from repro.circuit import generate_supremacy_circuit
    from repro.statevector import Simulator, sample_counts

    if args.qubits > 24:
        print("error: refusing > 24 qubits on a single machine", file=sys.stderr)
        return 2
    if (args.sanitize or args.strict) and not args.local_qubits:
        print("error: --sanitize/--strict need a distributed run "
              "(--local-qubits)", file=sys.stderr)
        return 2
    if (args.pipeline or args.storage_dir) and not args.local_qubits:
        print("error: --pipeline/--storage-dir need a distributed run "
              "(--local-qubits)", file=sys.stderr)
        return 2
    if args.pipeline_depth < 1:
        print("error: --pipeline-depth must be >= 1", file=sys.stderr)
        return 2
    if (args.trace or args.metrics or args.plan_stats) and not args.local_qubits:
        print("error: --trace/--metrics/--plan-stats need a distributed run "
              "(--local-qubits)", file=sys.stderr)
        return 2
    if (args.trace or args.metrics or args.plan_stats) and (
        args.sanitize or args.checkpoint_dir
    ):
        print("error: --trace/--metrics/--plan-stats apply to plain "
              "distributed runs (not --sanitize/--checkpoint-dir); use "
              "`repro trace` for a fully instrumented run", file=sys.stderr)
        return 2
    circuit = generate_supremacy_circuit(args.qubits, args.depth, seed=args.seed)
    if args.local_qubits:
        from repro.distributed import DistributedSimulator
        from repro.scheduling import SchedulerConfig, schedule_circuit

        schedule = schedule_circuit(
            circuit, SchedulerConfig(local_qubits=args.local_qubits)
        )
        storage = None
        state_factory = None
        if args.storage_dir:
            from repro.distributed import DiskShards
            from repro.distributed.state import DistributedState

            storage = DiskShards(
                1 << (args.qubits - args.local_qubits),
                1 << args.local_qubits,
                args.storage_dir,
            )

            def state_factory():
                return DistributedState(
                    schedule.num_qubits,
                    schedule.local_qubits,
                    storage=storage,
                    init=getattr(schedule, "initial_state", "zero"),
                    initial_global_qubits=schedule.initial_global_qubits
                    or None,
                )

        pipeline_layers = []
        if args.pipeline:
            from repro.runtime import PipelineLayer

            pipeline_layers = [PipelineLayer(depth=args.pipeline_depth)]
        if args.strict:
            from repro.staticcheck import verify_schedule

            report = verify_schedule(schedule)
            if not report.passed:
                print(report.format(), file=sys.stderr)
                print("error: static check failed; refusing to execute",
                      file=sys.stderr)
                return 1
            print(f"static check: PASS ({len(report.checks_run)} passes)")
        if args.sanitize:
            from repro.runtime import ExecutionEngine, SanitizerLayer
            from repro.staticcheck import ShardSanitizer
            from repro.util.locktrack import LOCK_TRACKER

            sanitizer = ShardSanitizer()
            engine = ExecutionEngine(  # lint: allow-engine-direct
                schedule,
                use_plan=False,
                layers=pipeline_layers + [SanitizerLayer(sanitizer)],
                state_factory=state_factory,
            )
            LOCK_TRACKER.reset()
            LOCK_TRACKER.enable()
            try:
                dist_state = engine.run().state
            finally:
                LOCK_TRACKER.disable()
            san_report = sanitizer.report
            state = dist_state.to_statevector()
            print(san_report.format())
            lock_stats = LOCK_TRACKER.stats()
            if lock_stats["acquire_counts"]:
                print("lock acquisitions:")
                for name, count in sorted(
                    lock_stats["acquire_counts"].items()
                ):
                    wait = lock_stats["wait_seconds"].get(name, 0.0)
                    print(f"  {name}: {count} acquires, "
                          f"{wait:.6f}s waiting")
                for a, b in lock_stats["edges"]:
                    print(f"  order: {a} -> {b}")
            print(
                f"distributed run: {dist_state.stats.alltoall_steps} "
                f"all-to-all steps (sanitized)"
            )
            if not san_report.passed:
                return 1
        elif args.checkpoint_dir:
            from repro.distributed.checkpoint import CheckpointManager

            mgr = CheckpointManager(args.checkpoint_dir)
            resuming = mgr.has_checkpoint()
            if resuming and not (args.pipeline or args.storage_dir):
                _, next_op = mgr.load()
                dist_state = mgr.resume(schedule, every=args.checkpoint_every)
                print(f"resumed checkpoint at op {next_op} "
                      f"from {args.checkpoint_dir}")
            else:
                from repro.runtime import CheckpointLayer, ExecutionEngine

                ckpt = CheckpointLayer(
                    mgr,
                    every=args.checkpoint_every,
                    resume=resuming,
                    state_factory=state_factory,
                )
                dist_state = ExecutionEngine(  # lint: allow-engine-direct
                    schedule,
                    use_plan=False,
                    layers=pipeline_layers + [ckpt],
                    state_factory=state_factory,
                ).run().state
                if resuming:
                    print(f"resumed checkpoint from {args.checkpoint_dir}")
                print(f"checkpointed every {args.checkpoint_every} ops "
                      f"to {args.checkpoint_dir}")
            state = dist_state.to_statevector()
            print(
                f"distributed run: {dist_state.stats.alltoall_steps} "
                f"all-to-all steps, "
                f"{dist_state.kernel_cost.total_calls} kernel calls"
            )
        else:
            telemetry = None
            if args.trace or args.metrics:
                from repro.telemetry import Telemetry

                if args.trace:
                    telemetry = Telemetry.enabled()
                else:
                    from repro.telemetry import MetricsRegistry

                    telemetry = Telemetry(
                        metrics=MetricsRegistry(enabled=True)
                    )
                if args.metrics:
                    # Lock contention rides the same registry as
                    # lock.acquire.count{name=} / lock.wait.seconds{name=}.
                    from repro.util.locktrack import LOCK_TRACKER

                    LOCK_TRACKER.reset()
                    LOCK_TRACKER.bind_metrics(telemetry.metrics)
                    LOCK_TRACKER.enable()
            plan_config = None
            if args.fusion_kmax is not None:
                from repro.plan import PlanConfig

                plan_config = PlanConfig(fusion_kmax=args.fusion_kmax)
            result = DistributedSimulator(
                args.qubits,
                args.local_qubits,
                storage=storage,
                telemetry=telemetry,
            ).run_schedule(
                schedule, plan_config=plan_config, layers=pipeline_layers
            )
            state = result.state.to_statevector()
            print(
                f"distributed run: {result.comm.alltoall_steps} "
                f"all-to-all steps, "
                f"{result.kernel_cost.total_calls} kernel calls"
            )
            if args.trace:
                from repro.telemetry import write_chrome_trace

                write_chrome_trace(args.trace, telemetry.tracer.spans)
                print(f"wrote {len(telemetry.tracer.spans)} spans "
                      f"to {args.trace}")
            if args.metrics:
                from repro.util.locktrack import LOCK_TRACKER

                LOCK_TRACKER.disable()
                LOCK_TRACKER.bind_metrics(None)
                print(telemetry.metrics.format())
            if args.plan_stats:
                from repro.kernels import GATHER_CACHE
                from repro.plan import plan_for

                # Same config as the run above: plan_for memoizes on the
                # frozen PlanConfig, so this reuses the executed plan.
                print("compiled plan:")
                summary = plan_for(schedule, plan_config).summary()
                for key, value in summary.items():
                    print(f"  {key:>20}: {value}")
                print("kernel-table cache:")
                for key, value in GATHER_CACHE.stats().items():
                    shown = f"{value:.4f}" if key == "hit_rate" else value
                    print(f"  {key:>20}: {shown}")
        if storage is not None:
            storage.close()
    else:
        run = Simulator(args.qubits).run(circuit)
        state = run.state
        print(f"single-node run: {run.wall_seconds:.2f}s, {run.gflops:.2f} GFLOPS")
    entropy = shannon_entropy(state.probabilities())
    print(
        f"output entropy: {entropy:.4f} nats "
        f"(Porter-Thomas {porter_thomas_entropy_nats(args.qubits):.4f})"
    )
    if args.shots:
        counts = sample_counts(state, args.shots, seed=args.seed)
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
        print("top outcomes:", ", ".join(f"{k:0{args.qubits}b}x{v}" for k, v in top))
    return 0


def _cmd_project(args) -> int:
    from repro.circuit import generate_supremacy_circuit
    from repro.perfmodel import (
        ARIES_DRAGONFLY,
        BaselineModel,
        CORI_KNL_NODE,
        TimelineModel,
    )
    from repro.scheduling import SchedulerConfig, schedule_circuit

    g = int(math.log2(args.nodes))
    if 1 << g != args.nodes:
        print("error: --nodes must be a power of two", file=sys.stderr)
        return 2
    local = args.qubits - g
    circuit = generate_supremacy_circuit(
        args.qubits, args.depth, seed=0, include_trailing_singles=False
    )
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=local, kmax=args.kmax, seed=1)
    )
    model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    baseline = BaselineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    ours = model.predict(schedule)
    base = baseline.predict(circuit, local)
    memory_bytes = (1 << args.qubits) * 16
    print(f"configuration : {args.qubits} qubits on {args.nodes} Cori II nodes")
    print(f"memory        : {memory_bytes / 2**50:.3f} PiB total "
          f"({(1 << local) * 16 / 2**30:.1f} GiB/node)")
    print(f"schedule      : {schedule.num_swaps} swaps, "
          f"{schedule.num_clusters} clusters (kmax={args.kmax})")
    print(f"time          : {ours.total_seconds:.2f} s "
          f"({100 * ours.comm_fraction:.1f}% communication)")
    print(f"sustained     : {ours.pflops:.3f} PFLOPS")
    print(f"speedup vs [5]: {base.total_seconds / ours.total_seconds:.1f}x")
    return 0


def _cmd_experiments(args) -> int:
    from repro import experiments as ex

    if args.name == "table1":
        print(f"{'qubits':>6} {'kmax':>4} {'clusters':>8} {'paper':>6} {'g/cluster':>10}")
        for row in ex.table1_rows():
            print(
                f"{row.qubits:>6} {row.kmax:>4} {row.clusters:>8} "
                f"{str(row.paper_clusters):>6} {row.gates_per_cluster:>10.2f}"
            )
    elif args.name == "table2":
        print(f"{'qubits':>6} {'nodes':>6} {'T[s]':>8} {'paper':>8} "
              f"{'comm%':>6} {'speedup':>8}")
        for row in ex.table2_rows():
            print(
                f"{row.qubits:>6} {row.nodes:>6} {row.model_seconds:>8.2f} "
                f"{str(row.paper_seconds):>8} {100 * row.comm_fraction:>6.1f} "
                f"{row.speedup_over_baseline:>7.1f}x"
            )
    elif args.name == "fig5-depth":
        print(f"{'depth':>5} {'swaps':>5} {'baseline (median/worst)':>24}")
        for p in ex.fig5_depth_series():
            print(f"{p.depth:>5} {p.swaps:>5} "
                  f"{p.baseline_global_gates_median:>11} / "
                  f"{p.baseline_global_gates_worst}")
    elif args.name == "fig5-size":
        print(f"{'qubits':>6} {'swaps':>5} {'baseline (median/worst)':>24}")
        for p in ex.fig5_size_series():
            print(f"{p.qubits:>6} {p.swaps:>5} "
                  f"{p.baseline_global_gates_median:>11} / "
                  f"{p.baseline_global_gates_worst}")
    elif args.name == "fig8":
        nodes = (16, 32, 64) if args.qubits <= 38 else (1024, 2048, 4096)
        print(f"{'nodes':>6} {'T[s]':>8} {'speedup':>8} {'comm%':>6}")
        for p in ex.fig8_series(args.qubits, nodes):
            print(f"{p.nodes:>6} {p.model_seconds:>8.2f} {p.speedup:>8.2f} "
                  f"{100 * p.comm_fraction:>6.1f}")
    return 0


def _cmd_chaos(args) -> int:
    import tempfile
    import time as _time

    from repro.circuit import generate_supremacy_circuit
    from repro.resilience import (
        ChaosScenario,
        FaultPlan,
        RetryPolicy,
        format_chaos_suite,
        run_chaos_suite,
        run_scenario,
    )
    from repro.resilience.chaos import ChaosSuiteResult
    from repro.scheduling import SchedulerConfig, schedule_circuit

    g = args.qubits - args.local_qubits
    if g < 1:
        print("error: need at least one global qubit (>= 2 ranks)",
              file=sys.stderr)
        return 2
    custom_plan = None
    if args.plan:
        try:
            custom_plan = FaultPlan.from_file(args.plan)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: bad fault plan {args.plan}: {exc}", file=sys.stderr)
            return 2
    circuit = generate_supremacy_circuit(args.qubits, args.depth, seed=args.seed)
    schedule = schedule_circuit(
        circuit,
        SchedulerConfig(local_qubits=args.local_qubits, kmax=args.kmax, seed=1),
    )
    policy = RetryPolicy(
        max_retries=args.max_retries, max_restarts=args.max_restarts
    )
    sleep = _time.sleep if args.real_sleep else (lambda _s: None)

    def run(workdir) -> int:
        if custom_plan is not None:
            scenario = ChaosScenario(
                name="custom-plan",
                description=f"fault plan from {args.plan}",
                build_plan=lambda _sched, _swaps, _policy: custom_plan,
                verify="every",
            )
            result = run_scenario(
                schedule, scenario, workdir, policy=policy,
                checkpoint_every=args.checkpoint_every, sleep=sleep,
            )
            suite = ChaosSuiteResult(
                schedule_summary=schedule.summary(), results=[result]
            )
        else:
            suite = run_chaos_suite(
                schedule, workdir, policy=policy,
                checkpoint_every=args.checkpoint_every, sleep=sleep,
            )
        print(format_chaos_suite(suite))
        return 0 if suite.passed else 1

    if args.workdir:
        return run(args.workdir)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        return run(workdir)


def _cmd_trace(args) -> int:
    from repro.circuit import generate_supremacy_circuit
    from repro.distributed import DistributedSimulator
    from repro.scheduling import SchedulerConfig, schedule_circuit
    from repro.telemetry import (
        Telemetry,
        format_flamegraph,
        perf_report,
        write_chrome_trace,
        write_jsonl,
    )

    from repro.util.locktrack import LOCK_TRACKER

    g = args.qubits - args.local_qubits
    if g < 0:
        print("error: --local-qubits exceeds --qubits", file=sys.stderr)
        return 2
    telemetry = Telemetry.enabled()
    # Lock contention joins the perf report through the same registry
    # (lock.acquire.count{name=} / lock.wait.seconds{name=}).
    LOCK_TRACKER.reset()
    LOCK_TRACKER.bind_metrics(telemetry.metrics)
    LOCK_TRACKER.enable()
    circuit = generate_supremacy_circuit(
        args.qubits, args.depth, seed=args.seed
    )
    schedule = schedule_circuit(
        circuit,
        SchedulerConfig(
            local_qubits=args.local_qubits,
            kmax=args.kmax,
            absorb_diagonals=args.absorb,
        ),
        telemetry=telemetry,
    )
    try:
        result = DistributedSimulator(
            args.qubits, args.local_qubits, telemetry=telemetry
        ).run_schedule(schedule)
    finally:
        LOCK_TRACKER.disable()
        LOCK_TRACKER.bind_metrics(None)
    spans = telemetry.tracer.spans
    write_chrome_trace(args.output, spans)
    print(f"wrote {len(spans)} spans ({1 << g} rank lanes) to {args.output}")
    if args.jsonl:
        write_jsonl(args.jsonl, spans)
        print(f"wrote span records to {args.jsonl}")
    if args.flamegraph:
        print()
        print(format_flamegraph(spans))
    print()
    report = perf_report(
        schedule, result.trace, result.comm, tolerance=args.tolerance
    )
    print(report.format())
    lock_stats = LOCK_TRACKER.stats()
    if lock_stats["acquire_counts"]:
        print()
        print("lock contention:")
        for name, count in sorted(lock_stats["acquire_counts"].items()):
            wait = lock_stats["wait_seconds"].get(name, 0.0)
            print(f"  {name}: {count} acquires, {wait:.6f}s waiting")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import (
        AdmissionPolicy,
        ServiceConfig,
        SimulationService,
        serve,
    )

    weights: dict[str, float] = {}
    for item in args.weight:
        tenant, sep, value = item.partition("=")
        if not sep:
            print(f"error: --weight needs TENANT=W, got {item!r}",
                  file=sys.stderr)
            return 2
        weights[tenant] = float(value)
    config = ServiceConfig(
        max_workers=args.workers,
        admission=AdmissionPolicy(
            max_state_bytes=args.max_state_bytes,
            max_predicted_seconds=args.max_predicted_seconds,
            max_queue_depth=args.max_queue_depth,
            max_tenant_active=args.max_tenant_active,
        ),
        tenant_weights=weights or None,
        postmortem_dir=args.postmortem_dir,
    )

    async def run() -> int:
        import signal

        service = SimulationService(config)
        await service.start()
        server = await serve(service, host=args.host, port=args.port)
        addr = server.sockets[0].getsockname()
        print(f"repro service on {addr[0]}:{addr[1]} "
              f"({args.workers} workers); Ctrl-C to stop")
        exposition = None
        if args.metrics_port is not None:
            exposition = service.exposition_server()
            mport = await exposition.start(
                host=args.host, port=args.metrics_port
            )
            print(f"observability plane on http://{args.host}:{mport}"
                  f"/metrics /healthz /statusz")
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def on_sigterm() -> None:
            # Last-gasp postmortem: the whole ring, before teardown
            # (per-job bundles only cover failed/timed-out jobs).
            if config.postmortem_dir is not None:
                os.makedirs(config.postmortem_dir, exist_ok=True)
                service.recorder.dump_jsonl(
                    os.path.join(
                        config.postmortem_dir,
                        f"sigterm-{os.getpid()}.jsonl",
                    )
                )
            stop.set()

        try:
            loop.add_signal_handler(signal.SIGTERM, on_sigterm)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without signal-handler support
        try:
            forever = asyncio.create_task(server.serve_forever())
            waiter = asyncio.create_task(stop.wait())
            _, pending = await asyncio.wait(
                {forever, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            pass
        finally:
            if exposition is not None:
                await exposition.stop()
            server.close()
            await server.wait_closed()
            await service.shutdown(drain=False)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped")
        return 0


def _cmd_submit(args) -> int:
    from repro.service import request

    if args.stats:
        response = request(args.host, args.port, {"op": "stats"})
        if not response.get("ok"):
            print(f"error: {response.get('error')}", file=sys.stderr)
            return 1
        stats = response["stats"]
        print(f"{'queue depth':>18}: {stats['queue_depth']}")
        print(f"{'running':>18}: {stats['running']}")
        for key, value in sorted(stats["jobs"].items()):
            print(f"{'jobs ' + key:>18}: {value}")
        for cache in ("plan_cache", "result_cache", "gather_cache"):
            hit_rate = stats[cache]["hit_rate"]
            print(f"{cache:>18}: {stats[cache]['entries']} entries, "
                  f"hit rate {hit_rate:.3f}")
        return 0

    if args.circuit:
        with open(args.circuit, encoding="utf-8") as fh:
            circuit_text = fh.read()
    elif args.qubits:
        from repro.circuit import circuit_to_text, generate_supremacy_circuit

        circuit_text = circuit_to_text(
            generate_supremacy_circuit(args.qubits, args.depth, seed=args.seed)
        )
    else:
        print("error: provide --circuit or --qubits", file=sys.stderr)
        return 2
    if not args.local_qubits:
        print("error: --local-qubits is required", file=sys.stderr)
        return 2
    import uuid

    trace_id = args.trace_id or uuid.uuid4().hex[:16]
    response = request(
        args.host,
        args.port,
        {
            "op": "submit",
            "tenant": args.tenant,
            "circuit": circuit_text,
            "local_qubits": args.local_qubits,
            "kmax": args.kmax,
            "priority": args.priority,
            "shots": args.shots,
            "seed": args.seed,
            "timeout_seconds": args.timeout,
            "use_result_cache": not args.no_result_cache,
            "wait": not args.no_wait,
            "trace_id": trace_id,
            "pipeline": args.pipeline,
        },
    )
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    print(f"{'job':>18}: {response['job_id']} [{response['status']}]")
    print(f"{'trace id':>18}: {response.get('trace_id', trace_id)}")
    if "predicted_seconds" in response:
        print(f"{'predicted':>18}: {response['predicted_seconds']:.4g} s, "
              f"{response['state_bytes']} state bytes")
    result = response.get("result")
    if result:
        for key in ("fingerprint", "signature_digest"):
            if result.get(key):
                print(f"{key:>18}: {result[key][:16]}...")
        print(f"{'wall seconds':>18}: {result['wall_seconds']:.4g}")
        print(f"{'from cache':>18}: {result['from_cache']}")
        if result.get("error"):
            print(f"{'error':>18}: {result['error']}")
        if result.get("samples"):
            top = sorted(
                result["samples"].items(), key=lambda kv: -kv[1]
            )[:5]
            print("top outcomes:", ", ".join(f"{k}x{v}" for k, v in top))
    return 0 if response["status"] in ("completed", "queued", "running") else 1


def _render_top(status: dict) -> str:
    """Render one ``/statusz`` payload as the ``repro top`` table.

    Pure function of the JSON payload (exposed for testing).
    """
    recorder = status.get("flight_recorder", {})
    lines = [
        f"repro top — uptime {status.get('uptime_seconds', 0.0):.1f}s  "
        f"queue {status.get('queue_depth', 0)}  "
        f"inflight {len(status.get('inflight', []))}  "
        f"recorder {recorder.get('size', 0)}/{recorder.get('capacity', 0)}",
        f"{'TENANT':<14} {'QUEUED':>6} {'RUNNING':>7} {'DONE':>6} "
        f"{'P95-WAIT':>9} {'VCLOCK':>8}  REJECTED",
    ]
    tenants = status.get("tenants", {})
    for tenant in sorted(tenants):
        view = tenants[tenant]
        rejected = ", ".join(
            f"{reason}:{count}"
            for reason, count in sorted(view.get("rejected", {}).items())
        )
        lines.append(
            f"{tenant:<14} {view.get('queued', 0):>6} "
            f"{view.get('running', 0):>7} {view.get('done', 0):>6} "
            f"{view.get('p95_queue_wait_seconds', 0.0):>9.4f} "
            f"{view.get('virtual_clock', 0.0):>8.3f}  {rejected or '-'}"
        )
    if not tenants:
        lines.append("(no tenants yet)")
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import json as json_module
    import time

    from repro.telemetry.live import http_get

    iteration = 0
    try:
        while True:
            try:
                status_code, body = http_get(
                    args.metrics_port, "/statusz", host=args.host
                )
            except OSError as exc:
                print(f"error: cannot reach /statusz: {exc}", file=sys.stderr)
                return 1
            if status_code != 200:
                print(f"error: /statusz returned {status_code}",
                      file=sys.stderr)
                return 1
            table = _render_top(json_module.loads(body))
            iteration += 1
            if args.iterations != 1:
                # Refreshing view: clear and home before each redraw.
                print("\x1b[2J\x1b[H", end="")
            print(table, flush=True)
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "schedule": _cmd_schedule,
        "check": _cmd_check,
        "lint": _cmd_lint,
        "simulate": _cmd_simulate,
        "project": _cmd_project,
        "experiments": _cmd_experiments,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
