"""Hierarchical span tracing.

A :class:`Span` is one timed region of a run — an executed schedule op, a
kernel sweep over the shards, one group-local all-to-all — with a name, a
``kind`` (the event category exporters group by), optional ``rank`` (the
virtual node it ran on) and free-form attributes.  Spans nest: the
:class:`Tracer` keeps a stack, so a kernel span opened while an op span
is active becomes its child, and the whole run folds into a tree that the
Chrome-trace exporter and the flamegraph summary render directly.

Two invariants hold for every tracer-produced tree (and are enforced by
:func:`verify_nesting`, which the tests drive):

* a child span lies inside its parent's ``[start, end]`` interval;
* sibling spans never overlap (execution here is sequential per lane).

Tracing is **disabled by default** everywhere it is threaded through:
``Tracer(enabled=False)`` hands out one shared no-op context manager, so
the instrumented hot paths pay a single attribute check per op.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NULL_TRACER", "NULL_SPAN_CONTEXT", "verify_nesting"]


@dataclass
class Span:
    """One timed, attributed region of a run.

    ``start``/``end`` are seconds relative to the owning tracer's epoch
    (``end is None`` while the span is still open).  ``parent_id`` links
    the nesting tree; ``rank`` selects the exporter lane (``None`` means
    the driver lane).
    """

    span_id: int
    name: str
    kind: str = ""
    start: float = 0.0
    end: float | None = None
    parent_id: int | None = None
    rank: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True once the span has been closed."""
        return self.end is not None

    @property
    def seconds(self) -> float:
        """Duration (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start


class _NullSpanContext:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that closes its span on exit (exception or not)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc):
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Records a tree of spans over one run.

    Parameters
    ----------
    enabled:
        When False every :meth:`span` call returns the shared no-op
        context manager and nothing is recorded.
    per_rank:
        Whether instrumented code should additionally emit per-rank child
        spans (one exporter lane per virtual node).  Purely advisory —
        the tracer records whatever it is given; hot loops consult this
        flag before fanning out.
    clock:
        Injectable monotonic clock (tests pass a fake for exact timing).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        per_rank: bool = True,
        clock=time.perf_counter,
    ) -> None:
        self.enabled = enabled
        self.per_rank = per_rank
        self._clock = clock
        self.epoch = clock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self.epoch

    def now(self) -> float:
        """Current time in tracer-epoch seconds (for :meth:`add_span`)."""
        return self._now()

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, *, kind: str = "", rank: int | None = None, **attrs):
        """Open a child span of the current span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            name=name,
            kind=kind,
            start=self._now(),
            parent_id=parent,
            rank=rank,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self._now()
        # Close any forgotten inner spans too, so one missing __exit__
        # cannot corrupt the stack for the rest of the run.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end

    def event(
        self, name: str, *, kind: str = "", rank: int | None = None, **attrs
    ) -> Span | None:
        """Record an instantaneous (zero-duration) span."""
        if not self.enabled:
            return None
        now = self._now()
        return self.add_span(
            name, kind=kind, start=now, end=now, rank=rank, **attrs
        )

    def add_span(
        self,
        name: str,
        *,
        kind: str = "",
        start: float,
        end: float,
        rank: int | None = None,
        parent_id: int | None = None,
        **attrs,
    ) -> Span | None:
        """Append an already-timed span (e.g. one lane copy per rank).

        The parent defaults to the currently open span.  Times are in
        tracer-epoch seconds, exactly as :attr:`Span.start` stores them.
        """
        if not self.enabled:
            return None
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(
            span_id=self._next_id,
            name=name,
            kind=kind,
            start=start,
            end=end,
            parent_id=parent_id,
            rank=rank,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span


#: Shared disabled tracer: the default for every instrumented component.
NULL_TRACER = Tracer(enabled=False)


def verify_nesting(
    spans: list[Span], *, tolerance: float = 0.0
) -> list[str]:
    """Check the span-tree invariants; returns violation descriptions.

    * every child's interval lies inside its parent's (child ⊆ parent);
    * siblings *on the same lane* (same ``rank``) never overlap.

    Per-rank lane copies added via :meth:`Tracer.add_span` legitimately
    share one wall interval across different ranks, which is why the
    sibling check is per-lane.  An empty return value means the tree is
    well formed.
    """
    problems: list[str] = []
    by_id = {s.span_id: s for s in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        if not span.finished:
            problems.append(f"span {span.span_id} ({span.name}) never finished")
            continue
        children.setdefault(span.parent_id, []).append(span)
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name}) has unknown parent "
                f"{span.parent_id}"
            )
        elif parent.end is not None and (
            span.start < parent.start - tolerance
            or span.end > parent.end + tolerance
        ):
            problems.append(
                f"span {span.span_id} ({span.name}) "
                f"[{span.start:.9f}, {span.end:.9f}] escapes parent "
                f"{parent.span_id} ({parent.name}) "
                f"[{parent.start:.9f}, {parent.end:.9f}]"
            )
    for siblings in children.values():
        lanes: dict[int | None, list[Span]] = {}
        for span in siblings:
            lanes.setdefault(span.rank, []).append(span)
        for lane in lanes.values():
            lane.sort(key=lambda s: (s.start, s.span_id))
            for prev, cur in zip(lane, lane[1:]):
                if prev.end is not None and cur.start < prev.end - tolerance:
                    problems.append(
                        f"siblings overlap: {prev.span_id} ({prev.name}) ends "
                        f"{prev.end:.9f}, {cur.span_id} ({cur.name}) starts "
                        f"{cur.start:.9f}"
                    )
    return problems
