"""Prometheus text exposition (format 0.0.4) for a metrics registry.

The registry's flat ``name{label=value,...}`` snapshot keys are parsed
back into (name, labels) pairs, metric names are mangled into the
Prometheus charset (dots become underscores: ``service.queue.depth`` ->
``service_queue_depth``), label values are escaped per the spec
(backslash, double quote, newline), and everything is emitted in a
deterministic order — names sorted, then label sets sorted — so two
scrapes of an idle process produce byte-identical pages.

Instrument types map directly: :class:`~repro.telemetry.metrics.Counter`
-> ``counter``, :class:`~repro.telemetry.metrics.Gauge` -> ``gauge``,
and :class:`~repro.telemetry.metrics.Histogram` -> ``summary`` (one
``{quantile="..."}`` sample per :data:`~repro.telemetry.metrics.QUANTILES`
entry plus ``_sum`` / ``_count``), which is how queue-wait and exec-time
SLO percentiles surface to a scraper.

:func:`prometheus_exposition` is the one-call entry point the
``/metrics`` endpoint (:mod:`repro.telemetry.live`) serves.
"""

from __future__ import annotations

import math
import re

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QUANTILES,
)

__all__ = [
    "CONTENT_TYPE",
    "escape_label_value",
    "parse_metric_key",
    "prometheus_exposition",
    "prometheus_name",
    "render_prometheus",
]

#: The Content-Type a 0.0.4 text-format scrape response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a flat registry key into ``(name, labels)``.

    Inverts :func:`repro.telemetry.metrics._render_key`:
    ``"x{a=1,b=}"`` -> ``("x", {"a": "1", "b": ""})``.  Empty label
    values (the locktrack ``{k=}`` shape) survive the round trip.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name, inner = key[:brace], key[brace + 1 : key.rfind("}")]
    labels: dict[str, str] = {}
    if inner:
        for item in inner.split(","):
            label, _, value = item.partition("=")
            labels[label] = value
    return name, labels


def prometheus_name(name: str) -> str:
    """Mangle a dotted metric name into the Prometheus charset."""
    mangled = _INVALID_NAME_CHARS.sub("_", name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _label_name(name: str) -> str:
    mangled = _INVALID_LABEL_CHARS.sub("_", name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    """Render a sample value (Go-parseable floats, special cases)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _label_block(labels: dict[str, str], extra: tuple[str, str] | None = None):
    items = [
        (_label_name(k), escape_label_value(str(v)))
        for k, v in sorted(labels.items())
    ]
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


def _type_of(instrument) -> str:
    if isinstance(instrument, Counter):
        return "counter"
    if isinstance(instrument, Gauge):
        return "gauge"
    if isinstance(instrument, Histogram):
        return "summary"
    return "untyped"


def render_prometheus(snapshot: dict, *, types: dict[str, str] | None = None) -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as text format 0.0.4.

    *types* maps raw (pre-mangling) metric names to Prometheus types
    (``counter`` / ``gauge`` / ``summary``); names not in the map are
    typed by shape — dict-valued samples (histogram summaries) render as
    summaries, scalars as ``untyped``.  Output order is deterministic:
    metric names sorted, label sets sorted within each name.
    """
    types = types or {}
    families: dict[str, list[tuple[tuple, dict, object]]] = {}
    for key in sorted(snapshot):
        name, labels = parse_metric_key(key)
        sort_key = tuple(sorted(labels.items()))
        families.setdefault(name, []).append((sort_key, labels, snapshot[key]))

    lines: list[str] = []
    for name in sorted(families):
        samples = sorted(families[name], key=lambda entry: entry[0])
        metric_type = types.get(name)
        if metric_type is None:
            summary_shaped = all(isinstance(v, dict) for _, _, v in samples)
            metric_type = "summary" if summary_shaped else "untyped"
        mangled = prometheus_name(name)
        lines.append(f"# TYPE {mangled} {metric_type}")
        for _, labels, value in samples:
            if isinstance(value, dict):
                for q in QUANTILES:
                    quantile = value.get(f"p{int(q * 100)}", 0.0)
                    block = _label_block(labels, ("quantile", repr(q)))
                    lines.append(
                        f"{mangled}{block} {_format_value(quantile)}"
                    )
                block = _label_block(labels)
                lines.append(
                    f"{mangled}_sum{block} "
                    f"{_format_value(value.get('sum', 0.0))}"
                )
                lines.append(
                    f"{mangled}_count{block} "
                    f"{_format_value(value.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{mangled}{_label_block(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """The full ``/metrics`` page for a live registry.

    Types come from the registry's actual instrument classes; values
    from one :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
    call, so the page is a consistent point-in-time view.
    """
    types: dict[str, str] = {}
    for key, instrument in registry.instruments().items():
        name, _ = parse_metric_key(key)
        kind = _type_of(instrument)
        if types.setdefault(name, kind) != kind:
            types[name] = "untyped"  # mixed types under one name
    return render_prometheus(registry.snapshot(), types=types)
