"""Trace exporters: Chrome-trace JSON, JSONL event stream, flamegraph text.

The Chrome-trace exporter emits the ``traceEvents`` JSON object format
(``ph: "X"`` complete events with microsecond timestamps) that both
``chrome://tracing`` and Perfetto load directly.  Lanes: every span with
``rank=None`` lands on the driver lane (tid 0); a span with ``rank=r``
lands on lane ``r + 1`` labelled ``rank r`` — so a distributed run shows
one swimlane per virtual node with the all-to-alls lined up across them.

The JSONL exporter writes one self-contained JSON object per span (for
ad-hoc jq/pandas analysis); the flamegraph formatter renders the span
tree as an indented inclusive-time summary, merging same-named siblings.
"""

from __future__ import annotations

import json

from repro.telemetry.spans import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "format_flamegraph",
]

_DRIVER_TID = 0


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return [_json_safe(v) for v in sorted(value)]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace(
    spans: list[Span], *, process_name: str = "repro"
) -> dict:
    """Build a Chrome-trace/Perfetto ``traceEvents`` JSON object.

    Unfinished spans are skipped (a valid trace file must not contain
    open-ended complete events).
    """
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": _DRIVER_TID,
            "name": "process_name",
            "args": {"name": process_name},
        },
        {
            "ph": "M",
            "pid": 0,
            "tid": _DRIVER_TID,
            "name": "thread_name",
            "args": {"name": "driver"},
        },
    ]
    named_ranks: set[int] = set()
    for span in spans:
        if not span.finished:
            continue
        if span.rank is None:
            tid = _DRIVER_TID
        else:
            tid = span.rank + 1
            if span.rank not in named_ranks:
                named_ranks.add(span.rank)
                events.append(
                    {
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": f"rank {span.rank}"},
                    }
                )
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = _json_safe(value)
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": span.start * 1e6,
                "dur": span.seconds * 1e6,
                "name": span.name,
                "cat": span.kind or "span",
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path, spans: list[Span], *, process_name: str = "repro"
) -> int:
    """Write the Chrome-trace JSON to *path*; returns the event count."""
    trace = chrome_trace(spans, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    return len(trace["traceEvents"])


def span_records(spans: list[Span]) -> list[dict]:
    """One JSON-ready dict per span (the JSONL line format)."""
    out = []
    for span in spans:
        out.append(
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "kind": span.kind,
                "start": span.start,
                "end": span.end,
                "seconds": span.seconds,
                "rank": span.rank,
                "attrs": _json_safe(span.attrs),
            }
        )
    return out


def write_jsonl(path, spans: list[Span]) -> int:
    """Write one JSON object per line; returns the line count."""
    records = span_records(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record))
            fh.write("\n")
    return len(records)


def format_flamegraph(
    spans: list[Span], *, width: int = 40, min_fraction: float = 0.0
) -> str:
    """Indented inclusive-time summary of the span tree.

    Same-named siblings merge into one row (with a call count), so a
    thousand ``kernel.apply`` spans under one stage collapse to one line.
    Rows shallower in the tree come first; each row shows inclusive
    seconds, the share of its root, and a proportional bar.  Per-rank
    lane copies (``rank`` set) are skipped — they duplicate their
    parent's wall time on other lanes.
    """
    finished = [s for s in spans if s.finished and s.rank is None]
    if not finished:
        return "(no spans)"
    children: dict[int | None, dict[str, list[Span]]] = {}
    by_id = {s.span_id: s for s in finished}
    for span in finished:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, {}).setdefault(span.name, []).append(span)

    root_total = sum(
        s.seconds for group in children.get(None, {}).values() for s in group
    )
    root_total = max(root_total, 1e-12)
    lines = [f"{'seconds':>10} {'share':>6}  span tree"]

    def render(parent_key: int | None, depth: int) -> None:
        groups = children.get(parent_key, {})
        ordered = sorted(
            groups.items(),
            key=lambda kv: -sum(s.seconds for s in kv[1]),
        )
        for name, group in ordered:
            seconds = sum(s.seconds for s in group)
            share = seconds / root_total
            if share < min_fraction:
                continue
            bar = "#" * max(1, round(width * share))
            count = f" x{len(group)}" if len(group) > 1 else ""
            lines.append(
                f"{seconds:>10.4f} {100 * share:>5.1f}%  "
                f"{'  ' * depth}{name}{count}  {bar}"
            )
            # Merge the children of every same-named sibling into one
            # sub-tree by rendering each member's children in turn under
            # a synthetic combined key.
            sub: dict[str, list[Span]] = {}
            for member in group:
                for child_name, child_group in children.get(
                    member.span_id, {}
                ).items():
                    sub.setdefault(child_name, []).extend(child_group)
            if sub:
                synthetic_key = ("merged", parent_key, name)
                children[synthetic_key] = sub  # type: ignore[index]
                render(synthetic_key, depth + 1)  # type: ignore[arg-type]

    render(None, 0)
    return "\n".join(lines)
