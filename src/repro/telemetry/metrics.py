"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` accompanies a run; instrumented components
register instruments by name plus optional labels —
``registry.counter("comm.bytes_on_network")``,
``registry.histogram("kernel.apply.seconds", k=4)`` — and the registry
de-duplicates, so every call site incrementing the same (name, labels)
pair shares one instrument.  :meth:`MetricsRegistry.snapshot` flattens
everything into a JSON-ready dict keyed ``name{label=value,...}``, the
form the bench records and the CLI ``--metrics`` dump use.

Like the tracer, a disabled registry hands out one shared no-op
instrument, so metrics threaded through hot paths cost an attribute check
when telemetry is off.

Naming convention (see docs/architecture.md "Observability"):
dot-separated ``subsystem.quantity[.unit]`` — ``comm.bytes_on_network``,
``kernel.apply.seconds``, ``sanitizer.findings``, ``resilience.restarts``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-written value (e.g. a schedule property)."""

    value: float = 0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-ready summary dict."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


def _render_key(name: str, labels: dict) -> str:
    """Canonical flat key: ``name`` or ``name{k=4,kind=swap}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for a run's instruments."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = _render_key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls()
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    # The instrument name is positional-only so ``name`` stays usable as
    # a *label* key (e.g. ``lock.acquire.count{name=...}``).
    def counter(self, name: str, /, **labels) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, /, **labels) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Flat JSON-ready dict of every instrument's current value."""
        out: dict = {}
        for key in sorted(self._instruments):
            inst = self._instruments[key]
            if isinstance(inst, Histogram):
                out[key] = inst.summary()
            else:
                out[key] = inst.value
        return out

    def format(self) -> str:
        """Human-readable one-line-per-metric dump."""
        lines = []
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{key}: count={value['count']} sum={value['sum']:.6g} "
                    f"mean={value['mean']:.6g}"
                )
            else:
                lines.append(f"{key}: {value}")
        return "\n".join(lines)


#: Shared disabled registry: the default everywhere metrics are threaded.
NULL_METRICS = MetricsRegistry(enabled=False)
