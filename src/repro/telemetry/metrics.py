"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` accompanies a run; instrumented components
register instruments by name plus optional labels —
``registry.counter("comm.bytes_on_network")``,
``registry.histogram("kernel.apply.seconds", k=4)`` — and the registry
de-duplicates, so every call site incrementing the same (name, labels)
pair shares one instrument.  :meth:`MetricsRegistry.snapshot` flattens
everything into a JSON-ready dict keyed ``name{label=value,...}``, the
form the bench records and the CLI ``--metrics`` dump use.

Like the tracer, a disabled registry hands out one shared no-op
instrument, so metrics threaded through hot paths cost an attribute check
when telemetry is off.

Naming convention (see docs/architecture.md "Observability"):
dot-separated ``subsystem.quantity[.unit]`` — ``comm.bytes_on_network``,
``kernel.apply.seconds``, ``sanitizer.findings``, ``resilience.restarts``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "QUANTILES",
]

#: The quantiles every histogram summary reports (SLO percentiles).
QUANTILES = (0.5, 0.95, 0.99)

#: Log-bucket growth factor: ~19% relative width per bucket, so a
#: quantile estimate is within ~9% of the true value after clamping to
#: the observed [min, max].
_BUCKET_BASE = 2.0 ** 0.25
_LOG_BASE = math.log(_BUCKET_BASE)


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-written value (e.g. a schedule property)."""

    value: float = 0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed values with log-bucketed quantiles.

    Alongside the running count/sum/min/max, every positive observation
    lands in a logarithmic bucket (``floor(log(v) / log(base))`` with
    base :data:`_BUCKET_BASE`); non-positive observations share one
    underflow bucket.  :meth:`quantile` walks the cumulative bucket
    counts and returns the hit bucket's geometric midpoint clamped into
    the observed ``[min, max]`` — an estimate with bounded relative
    error, constant memory, and no stored samples.
    """

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    #: Log-bucket index -> observation count (positive values only).
    buckets: dict[int, int] = field(default_factory=dict)
    #: Observations <= 0 (queue waits can round to exactly 0.0).
    nonpositive: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0:
            index = int(math.floor(math.log(value) / _LOG_BASE))
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.nonpositive += 1

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0.0 when empty).

        Deterministic: depends only on the multiset of observations,
        never on their order.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if q == 1.0:  # lint: allow-float-eq
            return self.max  # p100 is exact, not a bucket estimate
        rank = max(1, math.ceil(q * self.count))
        cumulative = self.nonpositive
        if cumulative >= rank:
            # All ranked observations are <= 0; min is the best estimate.
            return self.min
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                estimate = _BUCKET_BASE ** (index + 0.5)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - counts always add up

    def summary(self) -> dict:
        """JSON-ready summary dict (fixed key order for stable diffs)."""
        empty = not self.count
        summary = {
            "count": self.count,
            "sum": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": self.mean,
        }
        for q in QUANTILES:
            summary[f"p{int(q * 100)}"] = self.quantile(q)
        return summary


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


def _render_key(name: str, labels: dict) -> str:
    """Canonical flat key: ``name`` or ``name{k=4,kind=swap}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for a run's instruments."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = _render_key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls()
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    # The instrument name is positional-only so ``name`` stays usable as
    # a *label* key (e.g. ``lock.acquire.count{name=...}``).
    def counter(self, name: str, /, **labels) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, /, **labels) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> dict[str, object]:
        """Flat key -> live instrument (read-only view for exporters)."""
        return dict(self._instruments)

    def snapshot(self) -> dict:
        """Flat JSON-ready dict of every instrument's current value."""
        out: dict = {}
        for key in sorted(self._instruments):
            inst = self._instruments[key]
            if isinstance(inst, Histogram):
                out[key] = inst.summary()
            else:
                out[key] = inst.value
        return out

    def format(self) -> str:
        """Human-readable one-line-per-metric dump."""
        lines = []
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{key}: count={value['count']} sum={value['sum']:.6g} "
                    f"mean={value['mean']:.6g}"
                )
            else:
                lines.append(f"{key}: {value}")
        return "\n".join(lines)


#: Shared disabled registry: the default everywhere metrics are threaded.
NULL_METRICS = MetricsRegistry(enabled=False)
