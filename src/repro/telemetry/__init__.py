"""Observability layer: span tracing, metrics, exporters, perf reports.

The paper's evaluation lives and dies by instrumentation — Table 2's
"Comm." column, the Fig. 2 rooflines and the Fig. 6/9 cache plots are
all *measured* per-gate/per-collective quantities.  This package is the
repo's equivalent layer:

* :mod:`repro.telemetry.spans` — hierarchical :class:`Tracer`/:class:`Span`
  tracing threaded through the scheduler, the distributed simulator, the
  resilient executor, the comm layer and the kernel apply path;
* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of named
  counters/gauges/histograms (``comm.bytes_on_network``,
  ``kernel.apply.seconds{k=4}``, ``sanitizer.findings``, ...);
* :mod:`repro.telemetry.export` — Chrome-trace/Perfetto JSON (one lane
  per rank), a JSONL event stream and a flamegraph-style text summary;
* :mod:`repro.telemetry.report` — the predicted-vs-actual join of a
  run's spans against the :mod:`repro.perfmodel` timeline predictions;
* :mod:`repro.telemetry.exposition` — Prometheus text-format 0.0.4
  rendering of a registry snapshot;
* :mod:`repro.telemetry.live` — the live plane: an asyncio HTTP
  exposition server (``/metrics``, ``/healthz``, ``/statusz``) for
  long-running processes;
* :mod:`repro.telemetry.recorder` — the :class:`FlightRecorder` ring
  buffer of recent spans/lock events/job transitions, dumped as a JSONL
  postmortem bundle when a job dies.

Everything is disabled by default: components accept ``telemetry=None``
and fall back to :data:`NULL_TELEMETRY`, whose tracer and registry are
shared no-ops.  Opt in with ``Telemetry.enabled()`` (or the CLI's
``repro trace`` / ``simulate --trace/--metrics``).
"""

from repro.telemetry.export import (
    chrome_trace,
    format_flamegraph,
    span_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.exposition import prometheus_exposition
from repro.telemetry.live import ExpositionServer, http_get
from repro.telemetry.metrics import (
    NULL_METRICS,
    QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import FLIGHT_RECORDER, FlightRecorder
from repro.telemetry.report import PerfReport, StageComparison, perf_report
from repro.telemetry.runtime import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import NULL_TRACER, Span, Tracer, verify_nesting

__all__ = [
    "Counter",
    "ExpositionServer",
    "FLIGHT_RECORDER",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "PerfReport",
    "QUANTILES",
    "Span",
    "StageComparison",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "format_flamegraph",
    "http_get",
    "perf_report",
    "prometheus_exposition",
    "span_records",
    "verify_nesting",
    "write_chrome_trace",
    "write_jsonl",
]
