"""Predicted-vs-actual performance reports.

Joins a run's measured trace (op events with wall seconds and swap byte
counts) against the :class:`~repro.perfmodel.timeline.TimelineModel`'s
per-stage predictions.  Two different claims are checked:

* **bytes** — the model's all-to-all byte formula and the simulated MPI
  layer implement the same arithmetic, so predicted and measured comm
  bytes must agree *exactly*; any mismatch is flagged as an error (it
  means the comm plan and the execution diverged).
* **seconds** — wall times on this host will differ from the modeled
  machine (Cori II by default) by a roughly constant factor; the report
  normalizes by the run-wide measured/predicted ratio and flags stages
  whose *relative* deviation exceeds ``tolerance`` — those are stages
  where the model's shape (not its scale) disagrees with reality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageComparison", "PerfReport", "perf_report"]


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{int(value)} B" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} TiB"  # pragma: no cover


@dataclass(frozen=True)
class StageComparison:
    """Predicted vs measured quantities for one stage."""

    stage: int
    clusters: int
    predicted_kernel_seconds: float
    measured_kernel_seconds: float
    predicted_comm_seconds: float
    measured_comm_seconds: float
    predicted_comm_bytes: int
    measured_comm_bytes: int

    @property
    def bytes_match(self) -> bool:
        """True when the comm-byte join is exact."""
        return self.predicted_comm_bytes == self.measured_comm_bytes

    @property
    def predicted_seconds(self) -> float:
        """Predicted stage wall time."""
        return self.predicted_kernel_seconds + self.predicted_comm_seconds

    @property
    def measured_seconds(self) -> float:
        """Measured stage wall time."""
        return self.measured_kernel_seconds + self.measured_comm_seconds


@dataclass
class PerfReport:
    """The full predicted-vs-actual join of one run."""

    stages: list[StageComparison]
    predicted_total_seconds: float
    measured_total_seconds: float
    predicted_comm_bytes: int
    measured_comm_bytes: int
    tolerance: float
    flags: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no deviation was flagged."""
        return not self.flags

    @property
    def scale(self) -> float:
        """Run-wide measured/predicted time ratio (host vs modeled machine)."""
        if self.predicted_total_seconds <= 0:
            return 0.0
        return self.measured_total_seconds / self.predicted_total_seconds

    def format(self) -> str:
        """Human-readable per-stage table plus flags."""
        lines = [
            "predicted vs actual",
            "===================",
            f"modeled total : {self.predicted_total_seconds:.4f} s "
            f"({_human_bytes(self.predicted_comm_bytes)} on the network)",
            f"measured total: {self.measured_total_seconds:.4f} s "
            f"({_human_bytes(self.measured_comm_bytes)} on the network)",
            f"host/model time scale: {self.scale:.3g}x "
            f"(relative tolerance {self.tolerance:g}x)",
            "",
            f"{'stage':>5} {'clusters':>8} {'pred kern s':>11} "
            f"{'meas kern s':>11} {'pred comm s':>11} {'meas comm s':>11} "
            f"{'comm bytes':>12} {'join':>5}",
        ]
        for s in self.stages:
            lines.append(
                f"{s.stage:>5} {s.clusters:>8} "
                f"{s.predicted_kernel_seconds:>11.4f} "
                f"{s.measured_kernel_seconds:>11.4f} "
                f"{s.predicted_comm_seconds:>11.4f} "
                f"{s.measured_comm_seconds:>11.4f} "
                f"{s.measured_comm_bytes:>12} "
                f"{'ok' if s.bytes_match else 'FAIL':>5}"
            )
        lines.append("")
        if self.flags:
            lines.append("deviations:")
            lines.extend(f"  - {flag}" for flag in self.flags)
        else:
            lines.append("no deviations beyond tolerance")
        return "\n".join(lines)


def perf_report(
    schedule,
    trace,
    stats,
    *,
    model=None,
    tolerance: float = 4.0,
) -> PerfReport:
    """Join a measured run against the timeline model's predictions.

    Parameters
    ----------
    schedule:
        The executed :class:`~repro.scheduling.Schedule`.
    trace:
        The run's :class:`~repro.distributed.tracing.ExecutionTrace`
        (op events carrying seconds / bytes / op indices).
    stats:
        The run's :class:`~repro.distributed.comm.CommStats`; the trace's
        swap byte totals are cross-checked against it exactly.
    model:
        A :class:`~repro.perfmodel.timeline.TimelineModel`; defaults to
        the calibrated Cori II / Aries pair the paper evaluates on.
    tolerance:
        Allowed per-stage *relative* deviation (after normalizing out the
        run-wide host/model scale) before a stage is flagged.
    """
    # Imported lazily: perfmodel imports scheduling, which may itself be
    # mid-import when telemetry is loaded from low-level modules.
    from repro.perfmodel.machine import CORI_KNL_NODE
    from repro.perfmodel.network import ARIES_DRAGONFLY
    from repro.perfmodel.timeline import TimelineModel
    from repro.scheduling.program import SwapOp

    if model is None:
        model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    predictions = model.predict_stages(schedule)

    # Map op_index -> stage (a SwapOp belongs to the stage it enters).
    stage_of_op: dict[int, int] = {}
    stage = 0
    for index, op in enumerate(schedule.operations()):
        if isinstance(op, SwapOp):
            stage += 1
        stage_of_op[index] = stage

    measured_kernel = [0.0] * len(predictions)
    measured_comm = [0.0] * len(predictions)
    measured_bytes = [0] * len(predictions)
    for event in trace.events:
        if event.op_index is None or event.op_index not in stage_of_op:
            continue
        s = stage_of_op[event.op_index]
        if event.kind == "swap":
            measured_comm[s] += event.seconds
            measured_bytes[s] += event.bytes_moved or 0
        elif event.kind != "fault":
            measured_kernel[s] += event.seconds

    stages = [
        StageComparison(
            stage=p.stage,
            clusters=p.clusters,
            predicted_kernel_seconds=p.kernel_seconds,
            measured_kernel_seconds=measured_kernel[p.stage],
            predicted_comm_seconds=p.comm_seconds,
            measured_comm_seconds=measured_comm[p.stage],
            predicted_comm_bytes=p.comm_bytes,
            measured_comm_bytes=measured_bytes[p.stage],
        )
        for p in predictions
    ]

    predicted_total = sum(s.predicted_seconds for s in stages)
    measured_total = sum(s.measured_seconds for s in stages)
    predicted_bytes = sum(s.predicted_comm_bytes for s in stages)
    total_bytes = sum(s.measured_comm_bytes for s in stages)

    flags: list[str] = []
    if total_bytes != stats.bytes_on_network:
        flags.append(
            f"trace swap bytes ({total_bytes}) != CommStats "
            f"bytes_on_network ({stats.bytes_on_network})"
        )
    scale = measured_total / predicted_total if predicted_total > 0 else 0.0
    for s in stages:
        if not s.bytes_match:
            flags.append(
                f"stage {s.stage}: comm bytes {s.measured_comm_bytes} != "
                f"predicted {s.predicted_comm_bytes}"
            )
        if scale > 0 and s.predicted_seconds > 0 and s.measured_seconds > 0:
            relative = (s.measured_seconds / s.predicted_seconds) / scale
            if relative > tolerance or relative < 1.0 / tolerance:
                flags.append(
                    f"stage {s.stage}: wall time deviates {relative:.2f}x "
                    f"from the model's shape (tolerance {tolerance:g}x)"
                )

    return PerfReport(
        stages=stages,
        predicted_total_seconds=predicted_total,
        measured_total_seconds=measured_total,
        predicted_comm_bytes=predicted_bytes,
        measured_comm_bytes=total_bytes,
        tolerance=tolerance,
        flags=flags,
    )
