"""The telemetry bundle threaded through execution components.

:class:`Telemetry` pairs one :class:`~repro.telemetry.spans.Tracer` with
one :class:`~repro.telemetry.metrics.MetricsRegistry`.  Components accept
``telemetry=None`` and fall back to :data:`NULL_TELEMETRY` (both halves
disabled), so instrumentation is free unless a caller opts in with
``Telemetry.enabled()``.

This module deliberately imports nothing beyond the sibling span/metric
modules, so low-level layers (``repro.distributed.state``,
``repro.scheduling.scheduler``) can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.spans import NULL_TRACER, Tracer

__all__ = ["Telemetry", "NULL_TELEMETRY"]


@dataclass
class Telemetry:
    """One run's tracer + metrics registry."""

    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)

    @classmethod
    def enabled(cls, *, per_rank: bool = True) -> "Telemetry":
        """A fresh, fully armed bundle (spans + metrics)."""
        return cls(
            tracer=Tracer(enabled=True, per_rank=per_rank),
            metrics=MetricsRegistry(enabled=True),
        )

    @classmethod
    def spans_only(cls, *, per_rank: bool = True) -> "Telemetry":
        """Tracing without metrics (the middle overhead tier)."""
        return cls(tracer=Tracer(enabled=True, per_rank=per_rank))

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared all-off bundle."""
        return NULL_TELEMETRY

    @property
    def active(self) -> bool:
        """True when either half is collecting."""
        return self.tracer.enabled or self.metrics.enabled


#: Shared all-disabled bundle; the default for every component.
NULL_TELEMETRY = Telemetry(tracer=NULL_TRACER, metrics=NULL_METRICS)
