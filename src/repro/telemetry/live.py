"""Live observability plane: asyncio HTTP exposition for long-running runs.

:class:`ExpositionServer` is a minimal HTTP/1.0 listener (asyncio
streams, one short-lived connection per request — scrapers poll, they
do not pipeline) serving three endpoints:

- ``/metrics`` — the registry rendered as Prometheus text format 0.0.4
  (:func:`repro.telemetry.exposition.prometheus_exposition`).
- ``/healthz`` — liveness: ``200 ok`` / ``503`` with a one-line reason,
  from a caller-supplied probe (the service wires worker-pool liveness
  and queue saturation in; standalone runs default to always-healthy).
- ``/statusz`` — a JSON status page from a caller-supplied provider
  (per-tenant virtual clocks, in-flight jobs, cache hit rates, uptime).

The server is deliberately dependency-free and side-effect-free: it
never mutates the registry and holds no references into the engine, so
it can wrap *any* run — ``repro serve --metrics-port`` starts one around
the service, and a bench or notebook can start one around a bare
:class:`~repro.telemetry.metrics.MetricsRegistry`.

:func:`http_get` is the matching blocking client (stdlib sockets, no
HTTP library) used by ``repro top``, the benches, and the tests.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Callable

from repro.telemetry.exposition import CONTENT_TYPE, prometheus_exposition
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "ExpositionServer",
    "http_get",
]

_MAX_REQUEST_BYTES = 8192


def _default_health() -> tuple[bool, str]:
    return True, "ok"


class ExpositionServer:
    """Asyncio HTTP listener for ``/metrics``, ``/healthz``, ``/statusz``."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        status_provider: Callable[[], dict] | None = None,
        health_provider: Callable[[], tuple[bool, str]] | None = None,
        on_scrape: Callable[[], None] | None = None,
    ) -> None:
        self.registry = registry
        self._status_provider = status_provider or (lambda: {})
        self._health_provider = health_provider or _default_health
        #: Called before rendering /metrics — pull-model gauges (queue
        #: depth, uptime) refresh here instead of on every mutation.
        self._on_scrape = on_scrape
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start serving; returns the bound port (0 = ephemeral)."""
        if self._server is not None:
            raise RuntimeError("exposition server already started")
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting connections and release the socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        self.port = None

    # ------------------------------------------------------------------
    def _respond(self, path: str) -> tuple[int, str, str]:
        """Route one GET; returns (status, content_type, body).

        Pure CPU — no awaits needed, which keeps the handler's critical
        section trivially free of blocking calls.
        """
        if path == "/metrics":
            if self._on_scrape is not None:
                self._on_scrape()
            return 200, CONTENT_TYPE, prometheus_exposition(self.registry)
        if path == "/healthz":
            healthy, detail = self._health_provider()
            status = 200 if healthy else 503
            return status, "text/plain; charset=utf-8", detail + "\n"
        if path == "/statusz":
            body = json.dumps(
                self._status_provider(), sort_keys=True, default=str
            )
            return 200, "application/json; charset=utf-8", body + "\n"
        return 404, "text/plain; charset=utf-8", "not found\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                return
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2 or parts[0] != "GET":
                status, ctype, body = 400, "text/plain; charset=utf-8", (
                    "bad request\n"
                )
            else:
                # Drain (and ignore) headers up to the blank line.
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                status, ctype, body = self._respond(parts[1])
            payload = body.encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      503: "Service Unavailable"}.get(status, "OK")
            head = (
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # scraper went away mid-request; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass


def http_get(
    port: int, path: str, *, host: str = "127.0.0.1", timeout: float = 5.0
) -> tuple[int, str]:
    """Blocking one-shot GET against an :class:`ExpositionServer`.

    Returns ``(status_code, body)``.  Call from a plain thread (CLI,
    tests, benches) — never from the event loop that runs the server.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", "replace")
    head, _, body = raw.partition("\r\n\r\n")
    status_line = head.split("\r\n", 1)[0]
    status = int(status_line.split()[1])
    return status, body
