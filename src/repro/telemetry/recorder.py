"""Flight recorder: a bounded ring of recent runtime events.

A :class:`FlightRecorder` keeps the last *capacity* records — span
completions, lock events, job state transitions — in a
``collections.deque`` so a long-running service retains a recent-history
window at constant memory.  Producers call :meth:`FlightRecorder.record`
from any thread (one lock, O(1) append); consumers pull a consistent
:meth:`snapshot`, optionally filtered by ``trace_id`` so one job's
history can be extracted from the shared ring.

When a job dies — failure, cancellation-on-timeout, SIGTERM — the
service dumps the matching records as a JSONL *postmortem bundle* via
:meth:`dump_jsonl`: one JSON object per line, in arrival order, ready
for ``grep``/``jq`` or re-ingestion.  The engine side feeds the ring
through :class:`repro.runtime.layers.FlightRecorderLayer`; the lock side
through :meth:`repro.util.locktrack.LockTracker.bind_recorder`.

This module deliberately imports nothing from ``repro.runtime`` or
``repro.service`` (they import us), mirroring the metrics/tracer layering.
"""

from __future__ import annotations

import json
import threading
from collections import deque

__all__ = [
    "FLIGHT_RECORDER",
    "FlightRecorder",
]

#: Default ring capacity: enough for the tail of a multi-job burst
#: without growing the resident set (records are small dicts).
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Thread-safe bounded ring buffer of telemetry records.

    Each record is a plain dict with a monotonically increasing ``seq``
    (assigned under the ring's lock, so arrival order is total), a
    ``kind`` discriminator (``"span"``, ``"lock"``, ``"transition"``,
    ...), and whatever fields the producer supplied — by convention a
    ``trace_id`` whenever the event belongs to a job.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        """Append one event to the ring (evicting the oldest when full)."""
        with self._lock:
            self._seq += 1
            if len(self._ring) == self.capacity:
                self._dropped += 1
            entry = {"seq": self._seq, "kind": kind}
            entry.update(fields)
            self._ring.append(entry)

    def snapshot(
        self,
        *,
        trace_id: str | None = None,
        kinds: tuple[str, ...] | None = None,
    ) -> list[dict]:
        """Copy out the current ring contents, oldest first.

        ``trace_id`` keeps only records carrying that id; ``kinds``
        keeps only the listed ``kind`` values.  Filters compose.
        """
        with self._lock:
            records = list(self._ring)
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        if kinds is not None:
            records = [r for r in records if r["kind"] in kinds]
        return records

    def dump_jsonl(self, path, *, trace_id: str | None = None) -> int:
        """Write a postmortem bundle (one JSON object per line) to *path*.

        Returns the number of records written.  Sorted keys keep bundles
        diff-stable across runs of the same deterministic workload.
        """
        records = self.snapshot(trace_id=trace_id)
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True, default=str))
                fh.write("\n")
        return len(records)

    def clear(self) -> None:
        """Drop every record (seq keeps counting, for cross-clear order)."""
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring since the last :meth:`clear`."""
        with self._lock:
            return self._dropped

    def stats(self) -> dict:
        """Ring occupancy summary for ``/statusz``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._ring),
                "recorded": self._seq,
                "dropped": self._dropped,
            }


#: Process-global ring for code paths without an obvious recorder to
#: thread through (mirrors LOCK_TRACKER / NULL_METRICS).  The service
#: builds its own per-instance recorder instead of sharing this one.
FLIGHT_RECORDER = FlightRecorder()
