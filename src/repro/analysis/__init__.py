"""Output-distribution analysis for supremacy circuits.

The 36-qubit Edison run of Sec. 4.2.2 computes the *entropy* of the
output distribution (the final reduction costing 8.1 of the 99 seconds);
Boixo et al. [5] characterise supremacy circuits through the
Porter-Thomas shape of that distribution and cross-entropy benchmarking.

* :mod:`repro.analysis.entropy` — Shannon entropy and the distributed
  entropy reduction.
* :mod:`repro.analysis.porter_thomas` — the Porter-Thomas law, its
  expected entropy, and distribution-shape tests.
* :mod:`repro.analysis.xeb` — linear and logarithmic cross-entropy
  benchmarking fidelities.
"""

from repro.analysis.depth_scan import (
    DepthPoint,
    convergence_depth,
    entropy_depth_scan,
)
from repro.analysis.entropy import distributed_entropy, shannon_entropy
from repro.analysis.heavy_output import (
    PORTER_THOMAS_HOG_SCORE,
    heavy_output_probability,
    heavy_output_score,
    heavy_outputs,
)
from repro.analysis.porter_thomas import (
    porter_thomas_entropy_nats,
    porter_thomas_kl_divergence,
    porter_thomas_pdf,
)
from repro.analysis.xeb import linear_xeb_fidelity, log_xeb_fidelity

__all__ = [
    "DepthPoint",
    "PORTER_THOMAS_HOG_SCORE",
    "convergence_depth",
    "distributed_entropy",
    "entropy_depth_scan",
    "heavy_output_probability",
    "heavy_output_score",
    "heavy_outputs",
    "linear_xeb_fidelity",
    "log_xeb_fidelity",
    "porter_thomas_entropy_nats",
    "porter_thomas_kl_divergence",
    "porter_thomas_pdf",
    "shannon_entropy",
]
