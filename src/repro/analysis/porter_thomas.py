"""The Porter-Thomas distribution of supremacy-circuit outputs.

A sufficiently deep random circuit drives the output probabilities
``p = |<x|psi>|**2`` to the Porter-Thomas (exponential) law
``Pr(p) = N * exp(-N p)`` with ``N = 2**n`` [5].  Its Shannon entropy is
``ln N - 1 + gamma`` nats (gamma = Euler-Mascheroni), which is what the
simulated entropy converges to with circuit depth — a cheap end-to-end
sanity check that a simulator really produced supremacy-circuit output.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "porter_thomas_pdf",
    "porter_thomas_entropy_nats",
    "porter_thomas_kl_divergence",
]

_EULER_GAMMA = 0.5772156649015329


def porter_thomas_pdf(p: np.ndarray, num_qubits: int) -> np.ndarray:
    """Porter-Thomas density ``N exp(-N p)`` with ``N = 2**num_qubits``."""
    dim = float(1 << num_qubits)
    p = np.asarray(p, dtype=np.float64)
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    return dim * np.exp(-dim * p)


def porter_thomas_entropy_nats(num_qubits: int) -> float:
    """Expected output entropy ``ln(2**n) - 1 + gamma`` (nats) under PT."""
    return num_qubits * np.log(2.0) - 1.0 + _EULER_GAMMA


def porter_thomas_kl_divergence(probs: np.ndarray, num_qubits: int) -> float:
    """KL divergence of the empirical ``N*p`` histogram from Exp(1).

    Bins the scaled probabilities ``N p`` (which are Exp(1)-distributed
    under Porter-Thomas) and compares against the exponential law.
    Near-zero for deep random circuits; large for structured states
    (e.g. a computational-basis state or the uniform superposition).
    """
    dim = 1 << num_qubits
    scaled = np.asarray(probs, dtype=np.float64) * dim
    edges = np.linspace(0.0, 8.0, 33)
    hist, _ = np.histogram(scaled, bins=edges)
    hist = hist.astype(np.float64)
    tail = float((scaled >= edges[-1]).sum())
    counts = np.append(hist, tail)
    empirical = counts / counts.sum()
    cdf = 1.0 - np.exp(-edges)
    expected = np.append(np.diff(cdf), np.exp(-edges[-1]))
    mask = empirical > 0
    return float(
        (empirical[mask] * np.log(empirical[mask] / expected[mask])).sum()
    )
