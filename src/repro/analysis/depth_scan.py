"""Entropy-vs-depth convergence scans.

Boixo et al. [5] characterise when a random circuit becomes "supremacy
hard" by the convergence of its output statistics to Porter-Thomas; the
depth-25 choice of the paper's circuits comes from such scans.  This
module produces the curve for our generator: entropy (and KL to the
Porter-Thomas law) as a function of circuit depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.entropy import shannon_entropy
from repro.analysis.porter_thomas import (
    porter_thomas_entropy_nats,
    porter_thomas_kl_divergence,
)
from repro.circuit.supremacy import GridSpec, generate_supremacy_circuit
from repro.statevector.simulator import Simulator

__all__ = ["DepthPoint", "entropy_depth_scan", "convergence_depth"]


@dataclass(frozen=True)
class DepthPoint:
    """One depth sample of the convergence scan."""

    depth: int
    entropy_nats: float
    entropy_gap: float  # porter_thomas_entropy - entropy
    kl_to_porter_thomas: float


def entropy_depth_scan(
    grid: GridSpec | int,
    depths: list[int] | range,
    *,
    seed: int = 0,
) -> list[DepthPoint]:
    """Simulate the circuit at each depth and record convergence metrics.

    Amplitude simulation is required, so keep the grid at laptop scale
    (<= ~20 qubits); the *structure*-level analyses (Fig. 5) have no such
    limit.
    """
    if isinstance(grid, int):
        from repro.circuit.supremacy import grid_for_qubits

        grid = grid_for_qubits(grid)
    n = grid.num_qubits
    if n > 22:
        raise ValueError(f"depth scan needs amplitude simulation; {n} qubits is too large")
    target = porter_thomas_entropy_nats(n)
    simulator = Simulator(n)
    points = []
    for depth in depths:
        circuit = generate_supremacy_circuit(grid, int(depth), seed=seed)
        probs = simulator.run(circuit).state.probabilities()
        h = shannon_entropy(probs)
        points.append(
            DepthPoint(
                depth=int(depth),
                entropy_nats=h,
                entropy_gap=target - h,
                kl_to_porter_thomas=porter_thomas_kl_divergence(probs, n),
            )
        )
    return points


def convergence_depth(
    points: list[DepthPoint], *, kl_threshold: float = 0.02
) -> int | None:
    """First depth whose KL to Porter-Thomas stays below *kl_threshold*.

    Returns ``None`` when the scan never converges (circuit too shallow
    throughout).
    """
    converged_from: int | None = None
    for point in points:
        if point.kl_to_porter_thomas <= kl_threshold:
            if converged_from is None:
                converged_from = point.depth
        else:
            converged_from = None
    return converged_from
