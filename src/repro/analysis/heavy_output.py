"""Heavy-output generation (HOG) analysis.

A benchmarking statistic closely related to XEB: the *heavy outputs* of
a circuit are the bitstrings whose ideal probability exceeds the median.
An ideal sampler of a Porter-Thomas-distributed circuit produces heavy
outputs with probability ``(1 + ln 2) / 2 ≈ 0.846574``; a uniform
(fully depolarised) sampler scores exactly 1/2.  Quantum-volume-style
experiments pass at >= 2/3 — all of which a classical simulator must
supply the ideal probabilities for, the paper's calibration use-case.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "heavy_outputs",
    "heavy_output_probability",
    "heavy_output_score",
    "PORTER_THOMAS_HOG_SCORE",
]

#: Ideal-sampler HOG score under Porter-Thomas statistics: (1 + ln2)/2.
PORTER_THOMAS_HOG_SCORE = (1.0 + float(np.log(2.0))) / 2.0


def heavy_outputs(ideal_probs: np.ndarray) -> np.ndarray:
    """Indices of outcomes whose probability exceeds the median."""
    probs = np.asarray(ideal_probs, dtype=np.float64)
    median = np.median(probs)
    return np.flatnonzero(probs > median)


def heavy_output_probability(ideal_probs: np.ndarray) -> float:
    """Total ideal probability mass on the heavy set.

    For Porter-Thomas outputs this approaches
    :data:`PORTER_THOMAS_HOG_SCORE`; for the uniform distribution the
    heavy set is empty (no outcome exceeds the median), giving 0.
    """
    probs = np.asarray(ideal_probs, dtype=np.float64)
    return float(probs[heavy_outputs(probs)].sum())


def heavy_output_score(samples: np.ndarray, ideal_probs: np.ndarray) -> float:
    """Fraction of *samples* that land in the heavy set (the HOG score)."""
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ValueError("samples must be a 1-D array of outcome indices")
    probs = np.asarray(ideal_probs, dtype=np.float64)
    if np.any(samples < 0) or np.any(samples >= probs.shape[0]):
        raise ValueError("sample index out of range")
    heavy = np.zeros(probs.shape[0], dtype=bool)
    heavy[heavy_outputs(probs)] = True
    return float(heavy[samples].mean())
