"""Shannon entropy of output distributions."""

from __future__ import annotations

import numpy as np

from repro.distributed.state import DistributedState

__all__ = ["shannon_entropy", "distributed_entropy"]


def shannon_entropy(probs: np.ndarray, *, base: float | None = None) -> float:
    """Shannon entropy of a probability vector.

    Natural log by default (the Porter-Thomas comparisons use nats);
    pass ``base=2`` for bits.  Zero entries contribute zero.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if np.any(probs < -1e-12):
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    positive = probs[probs > 0]
    h = float(-(positive * np.log(positive)).sum())
    if base is not None:
        h /= np.log(base)
    return h


def distributed_entropy(
    state: DistributedState, *, base: float | None = None
) -> float:
    """Entropy of a distributed state's output distribution.

    Each virtual node reduces its own shard; a final cross-rank sum
    completes the reduction — the same final all-reduce the Edison run
    spends its last 8.1 seconds on (Sec. 4.2.2).  Never materialises the
    full probability vector.
    """
    partial = 0.0
    norm = 0.0
    for r in range(state.num_ranks):
        shard = state.storage.get(r)
        p = np.abs(np.asarray(shard)) ** 2
        norm += float(p.sum())
        positive = p[p > 0]
        partial += float(-(positive * np.log(positive)).sum())
    if not np.isclose(norm, 1.0, atol=1e-6):
        raise ValueError(f"state is not normalised (sum p = {norm})")
    if base is not None:
        partial /= np.log(base)
    return partial
