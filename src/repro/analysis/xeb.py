"""Cross-entropy benchmarking (XEB) fidelities.

The operational purpose of large classical simulations (Sec. 1): an
experimental device samples bitstrings from a supremacy circuit, the
simulator supplies the ideal probabilities of those bitstrings, and the
cross-entropy statistic estimates the device's fidelity [5].

* linear XEB:  ``F = 2**n * <p(x_sampled)> - 1``
* log XEB:     ``F = (H_0 - CE) / (H_0 - H_ideal)`` where
  ``CE = -<log p(x_sampled)>``, ``H_0 = n ln2 + gamma`` is the cross
  entropy of the uniform (fully depolarised) sampler against the ideal
  Porter-Thomas output, and ``H_ideal = n ln2 - 1 + gamma``.

Both return ~1 for samples drawn from the ideal distribution and ~0 for
uniform samples.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.porter_thomas import _EULER_GAMMA

__all__ = ["linear_xeb_fidelity", "log_xeb_fidelity"]


def _sample_probs(
    samples: np.ndarray, ideal_probs: np.ndarray
) -> np.ndarray:
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ValueError("samples must be a 1-D array of basis-state indices")
    if np.any(samples < 0) or np.any(samples >= ideal_probs.shape[0]):
        raise ValueError("sample index out of range for the ideal distribution")
    return np.asarray(ideal_probs, dtype=np.float64)[samples]


def linear_xeb_fidelity(samples: np.ndarray, ideal_probs: np.ndarray) -> float:
    """Linear cross-entropy fidelity ``2**n <p> - 1``."""
    dim = ideal_probs.shape[0]
    p = _sample_probs(samples, ideal_probs)
    return float(dim * p.mean() - 1.0)


def log_xeb_fidelity(samples: np.ndarray, ideal_probs: np.ndarray) -> float:
    """Logarithmic cross-entropy fidelity (Boixo et al.'s alpha)."""
    dim = ideal_probs.shape[0]
    n_ln2 = np.log(float(dim))
    p = _sample_probs(samples, ideal_probs)
    if np.any(p <= 0):
        raise ValueError("sampled a zero-probability outcome; check inputs")
    cross_entropy = float(-np.log(p).mean())
    h_uniform = n_ln2 + _EULER_GAMMA
    h_ideal = n_ln2 - 1.0 + _EULER_GAMMA
    return (h_uniform - cross_entropy) / (h_uniform - h_ideal)
