"""Entanglement measures across qubit bipartitions.

The paper's Fig. 1 caption: the CZ pattern "ensures that all possible
two qubit interactions ... are executed every 8 cycles", which "makes
the system highly entangled" — and high entanglement across every cut is
precisely what rules out compressed (e.g. tensor-network) simulation and
forces the full 0.5 PB state vector.  This module quantifies it:
reduced density matrices, von-Neumann entanglement entropy, and Schmidt
ranks across arbitrary cuts.
"""

from __future__ import annotations

import numpy as np

from repro.statevector.state import StateVector
from repro.util.validation import check_qubit_indices

__all__ = [
    "reduced_density_matrix",
    "entanglement_entropy",
    "schmidt_coefficients",
    "max_entanglement_entropy",
]


def _split_axes(state: StateVector, subsystem) -> tuple[np.ndarray, int, int]:
    """Reshape amplitudes to (subsystem, rest) matrix form."""
    n = state.num_qubits
    subsystem = check_qubit_indices(subsystem, n)
    if len(subsystem) == 0 or len(subsystem) == n:
        raise ValueError("subsystem must be a proper non-empty subset")
    rest = [q for q in range(n) if q not in set(subsystem)]
    tensor = state.data.reshape((2,) * n)
    # Axis for qubit q is (n-1-q); put subsystem axes first.
    order = [n - 1 - q for q in subsystem] + [n - 1 - q for q in rest]
    matrix = np.transpose(tensor, order).reshape(
        1 << len(subsystem), 1 << len(rest)
    )
    return matrix, len(subsystem), len(rest)


def reduced_density_matrix(state: StateVector, subsystem) -> np.ndarray:
    """``rho_A = Tr_B |psi><psi|`` for the qubits in *subsystem*.

    Result index bit ``j`` corresponds to ``subsystem[j]``... up to the
    internal axis ordering: bit ``j`` of the returned matrix corresponds
    to ``subsystem[len(subsystem)-1-j]`` — use
    :func:`entanglement_entropy` and :func:`schmidt_coefficients` for
    basis-independent quantities.
    """
    matrix, _, _ = _split_axes(state, subsystem)
    return matrix @ matrix.conj().T


def schmidt_coefficients(state: StateVector, subsystem) -> np.ndarray:
    """Descending Schmidt coefficients (singular values) across the cut."""
    matrix, _, _ = _split_axes(state, subsystem)
    return np.linalg.svd(matrix, compute_uv=False)


def entanglement_entropy(
    state: StateVector, subsystem, *, base: float = np.e
) -> float:
    """Von-Neumann entropy of the reduced state across the cut.

    Zero for product states; up to ``min(|A|, |B|) ln 2`` nats for
    maximally entangled cuts.
    """
    sv = schmidt_coefficients(state, subsystem)
    probs = sv**2
    probs = probs[probs > 1e-15]
    h = float(-(probs * np.log(probs)).sum())
    # np.log(np.e) == 1.0 exactly, so the natural-log default is a no-op
    # (and no exact float comparison against np.e is needed).
    return h / float(np.log(base))


def max_entanglement_entropy(num_qubits: int, subsystem_size: int) -> float:
    """The maximal possible cut entropy, ``min(|A|, n-|A|) ln 2`` nats.

    Haar-random states reach this minus a Page correction of about
    ``2**(2 min - n) / 2`` nats; deep supremacy circuits get equally
    close — the "highly entangled" regime.
    """
    if not 0 < subsystem_size < num_qubits:
        raise ValueError("subsystem_size must be a proper split")
    return min(subsystem_size, num_qubits - subsystem_size) * float(np.log(2.0))
