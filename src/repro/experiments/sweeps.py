"""Experiment sweep definitions (structured, reusable)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.circuit.stats import circuit_stats
from repro.circuit.supremacy import generate_supremacy_circuit
from repro.perfmodel.machine import CORI_KNL_NODE
from repro.perfmodel.network import ARIES_DRAGONFLY
from repro.perfmodel.timeline import BaselineModel, TimelineModel
from repro.scheduling.baseline import baseline_global_gates
from repro.scheduling.scheduler import SchedulerConfig, schedule_circuit
from repro.scheduling.stages import find_stages

__all__ = [
    "Table1Row",
    "Table2Row",
    "Fig5Point",
    "Fig8Point",
    "table1_rows",
    "table2_rows",
    "fig5_depth_series",
    "fig5_size_series",
    "fig8_series",
]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """One (qubits, kmax) cell of Table 1."""

    qubits: int
    kmax: int
    gates: int
    clusters: int
    gates_per_cluster: float
    paper_clusters: int | None


_PAPER_TABLE1 = {
    (30, 3): 82, (30, 4): 46, (30, 5): 36,
    (36, 3): 98, (36, 4): 53, (36, 5): 41,
    (42, 3): 111, (42, 4): 58, (42, 5): 46,
    (45, 3): 111, (45, 4): 73, (45, 5): 51,
}


def table1_rows(
    qubit_counts: Iterable[int] = (30, 36, 42, 45),
    kmax_values: Iterable[int] = (3, 4, 5),
    *,
    depth: int = 25,
    local_qubits: int = 30,
    seed: int = 1,
) -> list[Table1Row]:
    """Regenerate Table 1 (clusters per circuit size and kmax)."""
    rows = []
    for nq in qubit_counts:
        circuit = generate_supremacy_circuit(nq, depth, seed=0)
        gates = circuit_stats(circuit).total_gates
        for kmax in kmax_values:
            sched = schedule_circuit(
                circuit,
                SchedulerConfig(local_qubits=local_qubits, kmax=kmax, seed=seed),
            )
            rows.append(
                Table1Row(
                    qubits=nq,
                    kmax=kmax,
                    gates=gates,
                    clusters=sched.num_clusters,
                    gates_per_cluster=sched.gates_per_cluster(),
                    paper_clusters=_PAPER_TABLE1.get((nq, kmax)),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    """One Cori II run of Table 2 (model prediction)."""

    qubits: int
    nodes: int
    swaps: int
    clusters: int
    model_seconds: float
    comm_fraction: float
    pflops: float
    speedup_over_baseline: float
    paper_seconds: float | None
    paper_comm_pct: float | None


_PAPER_TABLE2 = {
    30: (1, 9.58, 0.0),
    36: (64, 28.92, 42.9),
    42: (4096, 79.53, 71.8),
    45: (8192, 552.61, 78.0),
}


def table2_rows(
    configurations: Iterable[tuple[int, int]] | None = None,
    *,
    depth: int = 25,
    kmax: int = 4,
    seed: int = 1,
) -> list[Table2Row]:
    """Regenerate Table 2 rows from real schedules + calibrated models."""
    if configurations is None:
        configurations = [(nq, cfg[0]) for nq, cfg in _PAPER_TABLE2.items()]
    model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    baseline = BaselineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    rows = []
    for nq, nodes in configurations:
        g = int(math.log2(nodes))
        if 1 << g != nodes:
            raise ValueError(f"nodes must be a power of two, got {nodes}")
        local = nq - g
        circuit = generate_supremacy_circuit(
            nq, depth, seed=0, include_trailing_singles=False
        )
        sched = schedule_circuit(
            circuit, SchedulerConfig(local_qubits=local, kmax=kmax, seed=seed)
        )
        ours = model.predict(sched)
        base = baseline.predict(circuit, local)
        paper = _PAPER_TABLE2.get(nq)
        rows.append(
            Table2Row(
                qubits=nq,
                nodes=nodes,
                swaps=sched.num_swaps,
                clusters=sched.num_clusters,
                model_seconds=ours.total_seconds,
                comm_fraction=ours.comm_fraction,
                pflops=ours.pflops,
                speedup_over_baseline=base.total_seconds / ours.total_seconds,
                paper_seconds=paper[1] if paper and paper[0] == nodes else None,
                paper_comm_pct=paper[2] if paper and paper[0] == nodes else None,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 5
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Point:
    """One x-position of Fig. 5 (either panel)."""

    qubits: int
    depth: int
    local_qubits: int
    swaps: int
    baseline_global_gates_median: int
    baseline_global_gates_worst: int


def _fig5_point(nq: int, depth: int, local: int, seed: int) -> Fig5Point:
    circuit = generate_supremacy_circuit(
        nq, depth, seed=0, include_initial_hadamards=False
    )
    plan = find_stages(circuit, local, seed=seed, restarts=3)
    return Fig5Point(
        qubits=nq,
        depth=depth,
        local_qubits=local,
        swaps=plan.num_swaps,
        baseline_global_gates_median=baseline_global_gates(
            circuit, local, worst_case=False
        ).global_gates,
        baseline_global_gates_worst=baseline_global_gates(
            circuit, local, worst_case=True
        ).global_gates,
    )


def fig5_depth_series(
    depths: Iterable[int] = (10, 20, 30, 40, 50),
    *,
    qubits: int = 42,
    local_qubits: int = 30,
    seed: int = 1,
) -> list[Fig5Point]:
    """Fig. 5a: communication vs circuit depth (42-qubit circuits)."""
    return [_fig5_point(qubits, d, local_qubits, seed) for d in depths]


def fig5_size_series(
    qubit_counts: Iterable[int] = (30, 36, 42, 45, 49),
    *,
    depth: int = 25,
    local_qubits: int = 30,
    seed: int = 1,
) -> list[Fig5Point]:
    """Fig. 5b: communication vs qubit count at depth 25."""
    return [_fig5_point(nq, depth, local_qubits, seed) for nq in qubit_counts]


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Point:
    """One node count of a Fig. 8 strong-scaling series."""

    qubits: int
    nodes: int
    model_seconds: float
    speedup: float
    comm_fraction: float


def fig8_series(
    qubits: int,
    node_counts: Iterable[int],
    *,
    depth: int = 25,
    kmax: int = 4,
    seed: int = 1,
) -> list[Fig8Point]:
    """Fig. 8: multi-node strong scaling for one circuit size."""
    model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    points = []
    base_time: float | None = None
    for nodes in node_counts:
        g = int(math.log2(nodes))
        local = qubits - g
        circuit = generate_supremacy_circuit(
            qubits, depth, seed=0, include_trailing_singles=False
        )
        sched = schedule_circuit(
            circuit, SchedulerConfig(local_qubits=local, kmax=kmax, seed=seed)
        )
        report = model.predict(sched)
        if base_time is None:
            base_time = report.total_seconds
        points.append(
            Fig8Point(
                qubits=qubits,
                nodes=nodes,
                model_seconds=report.total_seconds,
                speedup=base_time / report.total_seconds,
                comm_fraction=report.comm_fraction,
            )
        )
    return points
