"""Programmatic regeneration of the paper's tables and figures.

The benches in ``benchmarks/`` print reports; this subpackage exposes the
same experiment definitions as a library API returning structured rows,
so users can regenerate any evaluation artefact (or sweep beyond the
paper's parameter ranges) from their own code::

    from repro.experiments import table2_rows, fig5_depth_series

    for row in table2_rows():
        print(row.qubits, row.nodes, row.model_seconds, row.speedup)
"""

from repro.experiments.sweeps import (
    Fig5Point,
    Fig8Point,
    Table1Row,
    Table2Row,
    fig5_depth_series,
    fig5_size_series,
    fig8_series,
    table1_rows,
    table2_rows,
)

__all__ = [
    "Fig5Point",
    "Fig8Point",
    "Table1Row",
    "Table2Row",
    "fig5_depth_series",
    "fig5_size_series",
    "fig8_series",
    "table1_rows",
    "table2_rows",
]
