"""Google quantum-supremacy circuit generator (Fig. 1 of the paper).

Construction rules, quoted from the Fig. 1 caption:

1. Clock cycle 0: a Hadamard gate on every qubit.
2. Cycles 1..depth: one of eight CZ patterns, repeated cyclically, such
   that every nearest-neighbour pair on the 2D grid interacts once every
   8 cycles.
3. In each cycle, single-qubit gates are applied to all qubits which in
   the *previous* cycle (but not the current one) performed a CZ.  The
   gate is randomly chosen from {T, X^(1/2), Y^(1/2)}, except that the
   second single-qubit gate on each qubit (the first being the cycle-0
   Hadamard) is always T, and a randomly chosen gate must differ from the
   previous single-qubit gate on that qubit.

The CZ patterns follow the published GRCS ``cz_v2`` layout (the labelled-
edge rule used by Boixo et al.'s public circuits): horizontal edges carry
labels ``(2*row + col) mod 4 -> pattern {0,2,4,6}`` and vertical edges
``(row + 2*col) mod 4 -> pattern {1,3,5,7}``, with the public cycle order
``[0, 3, 2, 1, 4, 7, 6, 5]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate
from repro.util.rng import ensure_rng

__all__ = [
    "GridSpec",
    "grid_for_qubits",
    "cz_layer_pairs",
    "generate_supremacy_circuit",
]

#: Mapping from public clock-cycle order to internal pattern index, as in
#: the published GRCS cz_v2 circuits.
_LAYER_ORDER = (0, 3, 2, 1, 4, 7, 6, 5)

#: Grid shapes used in the paper (Table 2): 30 = 6x5, 36 = 6x6, 42 = 7x6,
#: 45 = 9x5, and 49 = 7x7 for the feasibility discussion.
_PAPER_GRIDS = {30: (6, 5), 36: (6, 6), 42: (7, 6), 45: (9, 5), 49: (7, 7)}


@dataclass(frozen=True)
class GridSpec:
    """A 2D qubit grid; qubit index = ``row * cols + col``."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"grid dimensions must be positive, got {self}")

    @property
    def num_qubits(self) -> int:
        """Total number of qubits on the grid."""
        return self.rows * self.cols

    def qubit(self, row: int, col: int) -> int:
        """Qubit index at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"({row}, {col}) outside {self}")
        return row * self.cols + col

    def position(self, qubit: int) -> tuple[int, int]:
        """(row, col) of a qubit index."""
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} outside {self}")
        return divmod(qubit, self.cols)

    def edges(self) -> list[tuple[int, int]]:
        """All nearest-neighbour qubit pairs on the grid."""
        pairs = []
        for r in range(self.rows):
            for c in range(self.cols):
                if c + 1 < self.cols:
                    pairs.append((self.qubit(r, c), self.qubit(r, c + 1)))
                if r + 1 < self.rows:
                    pairs.append((self.qubit(r, c), self.qubit(r + 1, c)))
        return pairs


def grid_for_qubits(num_qubits: int) -> GridSpec:
    """The grid shape the paper uses for a given qubit count.

    Falls back to the most square factorisation for sizes the paper does
    not mention.
    """
    if num_qubits in _PAPER_GRIDS:
        rows, cols = _PAPER_GRIDS[num_qubits]
        return GridSpec(rows, cols)
    best = (num_qubits, 1)
    for cols in range(1, int(num_qubits**0.5) + 1):
        if num_qubits % cols == 0:
            best = (num_qubits // cols, cols)
    return GridSpec(*best)


def cz_layer_pairs(grid: GridSpec, cycle_index: int) -> list[tuple[int, int]]:
    """CZ pairs applied in clock cycle ``cycle_index + 1`` (0-based layer).

    Implements the labelled-edge rule described in the module docstring.
    Every grid edge appears in exactly one of 8 consecutive layers.
    """
    internal = _LAYER_ORDER[cycle_index % 8]
    dir_row = internal % 2
    dir_col = 1 - dir_row
    shift = (internal >> 1) % 4
    pairs = []
    for r in range(grid.rows):
        for c in range(grid.cols):
            r2, c2 = r + dir_row, c + dir_col
            if r2 >= grid.rows or c2 >= grid.cols:
                continue
            if (r * (2 - dir_row) + c * (2 - dir_col)) % 4 != shift:
                continue
            pairs.append((grid.qubit(r, c), grid.qubit(r2, c2)))
    return pairs


def generate_supremacy_circuit(
    grid: GridSpec | int,
    depth: int,
    seed: int | None = 0,
    *,
    include_initial_hadamards: bool = True,
    include_trailing_singles: bool = True,
) -> Circuit:
    """Generate a depth-``depth`` supremacy circuit on *grid*.

    Parameters
    ----------
    grid:
        A :class:`GridSpec`, or a qubit count (resolved by
        :func:`grid_for_qubits` to the paper's grid shapes).
    depth:
        Number of CZ clock cycles (cycles 1..depth; the Hadamard layer is
        cycle 0 and not counted, matching the paper's "depth-25" label).
    seed:
        Seed for the random single-qubit gate choices.  Gate *counts* are
        seed-independent (the placement rule is deterministic); only the
        T / X^(1/2) / Y^(1/2) choice is random.
    include_initial_hadamards:
        When False, omits the cycle-0 Hadamards (the simulator shortcut of
        Sec. 3.6: initialise the state to ``(2^(-n/2), ...)`` directly).
    include_trailing_singles:
        When True (default, matching the public GRCS instances), qubits
        that performed a CZ in the final cycle receive their pending
        single-qubit gate in a trailing layer (cycle ``depth + 1``).  With
        this convention the depth-25 gate totals land on or within ±6 of
        the paper's Table 1 counts (369/447/528/569).

    Each gate's ``cycle`` attribute records its clock cycle.
    """
    if isinstance(grid, int):
        grid = grid_for_qubits(grid)
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    rng = ensure_rng(seed)
    n = grid.num_qubits
    circuit = Circuit(n)

    if include_initial_hadamards:
        for q in range(n):
            circuit.append(Gate("h", (q,), cycle=0))

    # Per-qubit single-qubit-gate history: None until the first random
    # single-qubit gate ("h" does not count, per the Fig. 1 rule).
    last_single: list[str | None] = [None] * n
    prev_cz_qubits: set[int] = set()

    for cycle in range(1, depth + 1):
        pairs = cz_layer_pairs(grid, cycle - 1)
        current_cz_qubits = {q for pair in pairs for q in pair}
        # Single-qubit gates: CZ'd last cycle, idle this cycle.
        for q in sorted(prev_cz_qubits - current_cz_qubits):
            if last_single[q] is None:
                name = "t"
            else:
                options = [g for g in ("t", "x_1_2", "y_1_2") if g != last_single[q]]
                name = options[int(rng.integers(len(options)))]
            last_single[q] = name
            circuit.append(Gate(name, (q,), cycle=cycle))
        for a, b in pairs:
            circuit.append(Gate("cz", (a, b), cycle=cycle))
        prev_cz_qubits = current_cz_qubits

    if include_trailing_singles:
        for q in sorted(prev_cz_qubits):
            if last_single[q] is None:
                name = "t"
            else:
                options = [g for g in ("t", "x_1_2", "y_1_2") if g != last_single[q]]
                name = options[int(rng.integers(len(options)))]
            last_single[q] = name
            circuit.append(Gate(name, (q,), cycle=depth + 1))

    return circuit
