"""Line-based text serialization for circuits.

Format (one gate per line, ``#`` comments, blank lines ignored)::

    qubits 36
    h 0
    h 1
    cz 3 4        # named gates use the registry matrix
    t 3 @cycle=5  # optional cycle tag

Only named gates round-trip; gates carrying custom matrices (e.g. fused
clusters) are rejected with a clear error, since the format stores no
matrix data.  The format mirrors the published GRCS instance files closely
enough that converting between the two is a one-liner.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate
from repro.gates.matrices import gate_matrix

import numpy as np

__all__ = ["circuit_to_text", "circuit_from_text"]


def circuit_to_text(circuit: Circuit) -> str:
    """Serialize *circuit* to the text format."""
    lines = [f"qubits {circuit.num_qubits}"]
    for gate in circuit:
        try:
            registry = gate_matrix(gate.name)
        except KeyError:
            raise ValueError(
                f"gate {gate.name!r} is not a named gate and cannot be serialized"
            ) from None
        if not np.allclose(registry, gate.matrix):
            raise ValueError(
                f"gate {gate.name!r} carries a custom matrix and cannot be serialized"
            )
        line = f"{gate.name} " + " ".join(map(str, gate.qubits))
        if gate.cycle is not None:
            line += f" @cycle={gate.cycle}"
        lines.append(line)
    return "\n".join(lines) + "\n"


def circuit_from_text(text: str) -> Circuit:
    """Parse the text format back into a :class:`Circuit`."""
    circuit: Circuit | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "qubits":
            if circuit is not None:
                raise ValueError(f"line {lineno}: duplicate 'qubits' header")
            if len(tokens) != 2:
                raise ValueError(f"line {lineno}: expected 'qubits N'")
            circuit = Circuit(int(tokens[1]))
            continue
        if circuit is None:
            raise ValueError(f"line {lineno}: missing 'qubits N' header")
        cycle = None
        if tokens[-1].startswith("@cycle="):
            cycle = int(tokens[-1].split("=", 1)[1])
            tokens = tokens[:-1]
        name, qubit_tokens = tokens[0], tokens[1:]
        if not qubit_tokens:
            raise ValueError(f"line {lineno}: gate {name!r} has no qubits")
        circuit.append(Gate(name, tuple(int(t) for t in qubit_tokens), cycle=cycle))
    if circuit is None:
        raise ValueError("empty circuit text (no 'qubits N' header)")
    return circuit
