"""Additional circuit families.

Beyond the supremacy circuits the paper evaluates, a simulator library
needs reference workloads: entangling benchmarks (GHZ), structured
transforms (QFT — see :mod:`repro.emulation` for its shortcut), and
generic random brickwork circuits for stress-testing schedulers on
geometries other than the 2D supremacy grid.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate
from repro.gates.matrices import random_unitary
from repro.util.rng import ensure_rng

__all__ = ["ghz_circuit", "random_brickwork_circuit", "hardware_efficient_ansatz"]


def ghz_circuit(num_qubits: int) -> Circuit:
    """H + CNOT ladder preparing ``(|0...0> + |1...1>)/sqrt(2)``."""
    circuit = Circuit(num_qubits)
    circuit.append(Gate("h", (0,)))
    for q in range(num_qubits - 1):
        circuit.append(Gate("cnot", (q, q + 1)))
    return circuit


def random_brickwork_circuit(
    num_qubits: int,
    depth: int,
    seed=None,
    *,
    two_qubit_fraction: float = 1.0,
) -> Circuit:
    """1D brickwork of Haar-random two-qubit gates.

    Layer ``t`` couples pairs ``(2i + t%2, 2i + t%2 + 1)``; with
    ``two_qubit_fraction < 1`` some bricks degrade to independent
    single-qubit unitaries, thinning the entanglement structure (useful
    for scheduler stress tests with varying light-cone speeds).
    """
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    if not 0.0 <= two_qubit_fraction <= 1.0:
        raise ValueError("two_qubit_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    circuit = Circuit(num_qubits)
    for layer in range(depth):
        start = layer % 2
        for a in range(start, num_qubits - 1, 2):
            b = a + 1
            if rng.random() < two_qubit_fraction:
                circuit.append(
                    Gate("haar2", (a, b), random_unitary(2, rng), cycle=layer)
                )
            else:
                circuit.append(
                    Gate("haar1", (a,), random_unitary(1, rng), cycle=layer)
                )
                circuit.append(
                    Gate("haar1", (b,), random_unitary(1, rng), cycle=layer)
                )
    return circuit


def hardware_efficient_ansatz(
    num_qubits: int, layers: int, seed=None
) -> Circuit:
    """A VQE-style ansatz: random single-qubit rotations + CZ ladders.

    The local-interaction workload the paper contrasts with supremacy
    circuits ("actual quantum algorithms, where interactions remain
    local over longer periods of time", Sec. 4.1.2) — schedulers get far
    more clustering head-room here.
    """
    import math

    rng = ensure_rng(seed)
    circuit = Circuit(num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            from repro.gates.matrices import rotation_matrix

            axis = "xyz"[int(rng.integers(3))]
            theta = float(rng.uniform(0, 2 * math.pi))
            circuit.append(
                Gate(f"r{axis}({theta:.3f})", (q,), rotation_matrix(axis, theta),
                     cycle=layer)
            )
        for q in range(layer % 2, num_qubits - 1, 2):
            circuit.append(Gate("cz", (q, q + 1), cycle=layer))
    return circuit
