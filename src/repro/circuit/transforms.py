"""Circuit-level transformations.

Two of these come straight from the paper's Sec. 3.6:

* the initial Hadamard layer is replaced by direct ``|+...+>``
  initialisation (handled by the scheduler's ``skip_initial_hadamards``);
* "we do not simulate the final CZ gates as they only alter the phases
  of the probability amplitudes, but not the probabilities" —
  generalised here to :func:`drop_final_diagonal_gates`, which removes
  *every* trailing diagonal gate with no dense successor.

:func:`merge_single_qubit_runs` is the classic peephole pass: runs of
consecutive single-qubit gates on one qubit collapse into a single
unitary, shrinking the gate count the scheduler has to cluster.
"""

from __future__ import annotations


from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate

__all__ = ["drop_final_diagonal_gates", "merge_single_qubit_runs"]


def drop_final_diagonal_gates(circuit: Circuit) -> Circuit:
    """Remove trailing diagonal gates that cannot affect probabilities.

    A gate is removable when it is diagonal and, on every one of its
    qubits, no *dense* (non-diagonal) gate comes later — then it only
    multiplies amplitudes by phases that ``|amp|**2`` discards.  Applied
    iteratively until a fixpoint.  Output probabilities are exactly
    preserved; amplitudes are not (document accordingly at call sites).
    """
    gates = list(circuit.gates)
    # A diagonal gate is removable iff every later gate sharing a qubit
    # with it is also (recursively) removable-or-diagonal.  One backward
    # sweep suffices: track per qubit whether a dense gate was seen later.
    dense_seen: set[int] = set()
    keep: list[bool] = [True] * len(gates)
    for i in range(len(gates) - 1, -1, -1):
        gate = gates[i]
        if gate.is_diagonal and not any(q in dense_seen for q in gate.qubits):
            keep[i] = False
        else:
            dense_seen.update(gate.qubits)
    return Circuit(
        circuit.num_qubits, (g for i, g in enumerate(gates) if keep[i])
    )


def merge_single_qubit_runs(circuit: Circuit) -> Circuit:
    """Collapse consecutive single-qubit gates per qubit into one gate.

    Two single-qubit gates on qubit ``q`` are consecutive when no other
    gate touches ``q`` between them; the merged gate's matrix is the
    product (later @ earlier).  Multi-qubit gates pass through untouched.
    """
    merged: list[Gate | None] = []
    #: per qubit, index into `merged` of a pending 1q gate to extend.
    pending: dict[int, int] = {}
    for gate in circuit:
        if gate.num_qubits == 1:
            q = gate.qubits[0]
            if q in pending:
                slot = pending[q]
                prev = merged[slot]
                combined = gate.matrix @ prev.matrix
                merged[slot] = Gate(
                    _merged_name(prev, gate), (q,), combined, cycle=prev.cycle
                )
            else:
                pending[q] = len(merged)
                merged.append(gate)
        else:
            for q in gate.qubits:
                pending.pop(q, None)
            merged.append(gate)
    return Circuit(circuit.num_qubits, (g for g in merged if g is not None))


def _merged_name(first: Gate, second: Gate) -> str:
    base = first.name if first.name.startswith("merged[") else f"merged[{first.name}"
    inner = base[len("merged["):].rstrip("]")
    return f"merged[{inner};{second.name}]"
