"""Circuit intermediate representation and generators.

* :mod:`repro.circuit.circuit` — the :class:`Circuit` container: an ordered
  gate list with per-qubit sequences and dependency queries.  Gate order on
  a single qubit is a hard constraint (supremacy gates never commute on a
  shared qubit, Sec. 3.6.1); gates on disjoint qubits commute trivially.
* :mod:`repro.circuit.supremacy` — the Google quantum-supremacy circuit
  generator following the Fig. 1 rules and the published GRCS ``cz_v2``
  CZ-pattern layout.
* :mod:`repro.circuit.dag` — dependency DAG construction (networkx) and
  derived quantities (critical path, frontier iteration).
* :mod:`repro.circuit.stats` — gate-count statistics used by Table 1 and
  the Fig. 5 communication analysis.
* :mod:`repro.circuit.text` — a minimal line-based text format for saving
  and loading circuits.
"""

from repro.circuit.circuit import Circuit
from repro.circuit.dag import circuit_dag, critical_path_length
from repro.circuit.library import (
    ghz_circuit,
    hardware_efficient_ansatz,
    random_brickwork_circuit,
)
from repro.circuit.stats import CircuitStats, circuit_stats
from repro.circuit.supremacy import (
    GridSpec,
    cz_layer_pairs,
    generate_supremacy_circuit,
    grid_for_qubits,
)
from repro.circuit.text import circuit_from_text, circuit_to_text

__all__ = [
    "Circuit",
    "CircuitStats",
    "GridSpec",
    "circuit_dag",
    "circuit_from_text",
    "circuit_stats",
    "circuit_to_text",
    "critical_path_length",
    "cz_layer_pairs",
    "generate_supremacy_circuit",
    "ghz_circuit",
    "grid_for_qubits",
    "hardware_efficient_ansatz",
    "random_brickwork_circuit",
]
