"""Dependency DAG over circuit gates.

Two gates depend on each other iff they share a qubit and appear in a
fixed relative order (supremacy gates on a shared qubit never commute,
Sec. 3.6.1).  The DAG is the structure both the stage finder and the
clustering pass walk.
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.circuit import Circuit

__all__ = ["circuit_dag", "critical_path_length", "frontier_gates"]


def circuit_dag(circuit: Circuit) -> nx.DiGraph:
    """Build the gate-dependency DAG.

    Nodes are gate indices into ``circuit.gates``; an edge ``u -> v`` means
    gate ``u`` is the immediate predecessor of gate ``v`` on some shared
    qubit.  Node attribute ``"gate"`` holds the :class:`Gate`.
    """
    dag = nx.DiGraph()
    last_on_qubit: dict[int, int] = {}
    for i, gate in enumerate(circuit):
        dag.add_node(i, gate=gate)
        for q in gate.qubits:
            if q in last_on_qubit:
                dag.add_edge(last_on_qubit[q], i)
            last_on_qubit[q] = i
    return dag


def critical_path_length(circuit: Circuit) -> int:
    """Length (in gates) of the longest dependency chain."""
    if len(circuit) == 0:
        return 0
    dag = circuit_dag(circuit)
    return nx.dag_longest_path_length(dag) + 1


def frontier_gates(dag: nx.DiGraph, executed: set[int]) -> list[int]:
    """Gate indices whose predecessors are all in *executed*.

    The classic Kahn frontier; the stage finder consumes it repeatedly.
    """
    frontier = []
    for node in dag.nodes:
        if node in executed:
            continue
        if all(pred in executed for pred in dag.predecessors(node)):
            frontier.append(node)
    return sorted(frontier)
