"""Circuit statistics (gate counts, composition, depth)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.circuit.circuit import Circuit
from repro.circuit.dag import critical_path_length

__all__ = ["CircuitStats", "circuit_stats"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a circuit.

    ``total_gates`` matches the "Number of Gates" column of Table 1 when
    computed on a full depth-25 supremacy circuit (including the cycle-0
    Hadamards).
    """

    num_qubits: int
    total_gates: int
    counts_by_name: dict[str, int] = field(default_factory=dict)
    counts_by_size: dict[int, int] = field(default_factory=dict)
    diagonal_gates: int = 0
    critical_path: int = 0

    @property
    def single_qubit_gates(self) -> int:
        """Number of 1-qubit gates."""
        return self.counts_by_size.get(1, 0)

    @property
    def two_qubit_gates(self) -> int:
        """Number of 2-qubit gates."""
        return self.counts_by_size.get(2, 0)


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for *circuit*."""
    by_name: Counter[str] = Counter()
    by_size: Counter[int] = Counter()
    diagonal = 0
    for gate in circuit:
        by_name[gate.name] += 1
        by_size[gate.num_qubits] += 1
        if gate.is_diagonal:
            diagonal += 1
    return CircuitStats(
        num_qubits=circuit.num_qubits,
        total_gates=len(circuit),
        counts_by_name=dict(by_name),
        counts_by_size=dict(by_size),
        diagonal_gates=diagonal,
        critical_path=critical_path_length(circuit),
    )
