"""The :class:`Circuit` container."""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.gates.fusion import fuse_gates
from repro.gates.gate import Gate

__all__ = ["Circuit"]


class Circuit:
    """An ordered list of gates on ``num_qubits`` qubits.

    The list order is the application order.  Only the *relative* order of
    gates sharing a qubit is semantically meaningful; schedulers exploit
    this freedom (Sec. 3.6.1) but must preserve per-qubit order, which
    :meth:`same_qubit_order_preserved` lets tests verify.
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = ()) -> None:
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        self._content_hash: str | None = None
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------
    # Mutation / access
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append *gate*, validating its qubit indices. Returns self."""
        if not isinstance(gate, Gate):
            raise TypeError(f"expected Gate, got {type(gate).__name__}")
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"gate {gate!r} out of range for {self.num_qubits} qubits"
                )
        self._gates.append(gate)
        self._content_hash = None
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate in *gates*. Returns self."""
        for gate in gates:
            self.append(gate)
        return self

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gates in application order (immutable view)."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Circuit(self.num_qubits, self._gates[index])
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return f"Circuit(num_qubits={self.num_qubits}, gates={len(self._gates)})"

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def gate_indices_by_qubit(self) -> list[list[int]]:
        """For each qubit, the ordered indices of gates acting on it."""
        per_qubit: list[list[int]] = [[] for _ in range(self.num_qubits)]
        for i, gate in enumerate(self._gates):
            for q in gate.qubits:
                per_qubit[q].append(i)
        return per_qubit

    def used_qubits(self) -> set[int]:
        """Qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def max_gate_size(self) -> int:
        """Largest k among the circuit's gates (0 for an empty circuit)."""
        return max((g.num_qubits for g in self._gates), default=0)

    def content_hash(self) -> str:
        """Deterministic structural hash of the circuit (sha256 hex).

        Hashes ``num_qubits`` plus every gate's ``(name, qubits, matrix)``
        in application order, with the matrix canonicalised to contiguous
        ``complex128`` bytes — so two circuits built independently from
        the same gates hash equal regardless of how the matrices were
        produced, while any change to order, targets or entries changes
        the digest.  Equivalent-under-commutation orderings are *not*
        identified: this is a structural key (the one the service layer's
        result cache and plan cache use), not a semantic one.

        The digest is cached and invalidated by :meth:`append`.
        """
        if self._content_hash is not None:
            return self._content_hash
        h = hashlib.sha256()
        h.update(b"repro.circuit/v1")
        h.update(self.num_qubits.to_bytes(4, "little"))
        for gate in self._gates:
            h.update(gate.name.encode("utf-8"))
            h.update(len(gate.qubits).to_bytes(2, "little"))
            for q in gate.qubits:
                h.update(int(q).to_bytes(4, "little"))
            matrix = np.ascontiguousarray(gate.matrix, dtype=np.complex128)
            h.update(matrix.tobytes())
        self._content_hash = h.hexdigest()
        return self._content_hash

    def same_qubit_order_preserved(self, other: "Circuit") -> bool:
        """True when *other* is a per-qubit-order-preserving reordering.

        Compares, for each qubit, the sequence of (name, qubits, matrix)
        triples; this is the invariant every scheduler output must satisfy.
        """
        if self.num_qubits != other.num_qubits or len(self) != len(other):
            return False

        def per_qubit_seq(circ: "Circuit") -> list[list[Gate]]:
            seqs: list[list[Gate]] = [[] for _ in range(circ.num_qubits)]
            for gate in circ:
                for q in gate.qubits:
                    seqs[q].append(gate)
            return seqs

        return per_qubit_seq(self) == per_qubit_seq(other)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def remap(self, mapping: dict[int, int] | Sequence[int]) -> "Circuit":
        """Return a circuit with qubits renamed by *mapping* (Sec. 3.6.2).

        *mapping* maps old index -> new index and must be a bijection over
        ``range(num_qubits)``.
        """
        if not isinstance(mapping, dict):
            mapping = {old: new for old, new in enumerate(mapping)}
        if sorted(mapping) != list(range(self.num_qubits)) or sorted(
            mapping.values()
        ) != list(range(self.num_qubits)):
            raise ValueError("mapping must be a bijection on range(num_qubits)")
        return Circuit(self.num_qubits, (g.remap(mapping) for g in self._gates))

    def dagger(self) -> "Circuit":
        """Return the inverse circuit (reversed order of adjoint gates)."""
        return Circuit(self.num_qubits, (g.dagger() for g in reversed(self._gates)))

    def unitary(self) -> np.ndarray:
        """Full ``2**n x 2**n`` unitary of the circuit (small n only)."""
        if self.num_qubits > 12:
            raise ValueError(
                f"refusing to build a dense unitary for {self.num_qubits} qubits"
            )
        fused = fuse_gates(self._gates, tuple(range(self.num_qubits)))
        return fused.matrix
