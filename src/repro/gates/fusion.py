"""Gate lifting and fusion into k-qubit cluster matrices.

Sec. 3.3 of the paper: "multiple gates acting on k different qubits can be
combined into one large k-qubit gate".  The scheduler (Sec. 3.6.1) groups
gates into clusters; this module turns a cluster's gate sequence into the
single ``2**k x 2**k`` unitary the tuned kernel then applies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gates.gate import Gate
from repro.util.bits import expand_index

__all__ = ["lift_gate_matrix", "fuse_gates"]


def lift_gate_matrix(
    matrix: np.ndarray, positions: Sequence[int], cluster_qubits: int
) -> np.ndarray:
    """Embed a small gate matrix into a ``2**cluster_qubits`` space.

    Parameters
    ----------
    matrix:
        ``2**g x 2**g`` unitary of the gate being lifted.
    positions:
        For each gate qubit (matrix bit ``j``), its bit position inside the
        cluster index.  Length ``g``, entries in ``[0, cluster_qubits)``.
    cluster_qubits:
        Size ``k`` of the destination space.

    Returns the ``2**k x 2**k`` matrix ``I ⊗ ... ⊗ U ⊗ ... ⊗ I`` with the
    tensor factors permuted so that gate bit ``j`` lands at ``positions[j]``.
    """
    g = len(positions)
    if matrix.shape != (1 << g, 1 << g):
        raise ValueError(
            f"matrix shape {matrix.shape} inconsistent with {g} positions"
        )
    if any(not 0 <= p < cluster_qubits for p in positions):
        raise ValueError(f"positions {positions} out of range for k={cluster_qubits}")
    dim = 1 << cluster_qubits
    lifted = np.zeros((dim, dim), dtype=np.complex128)
    x = np.arange(1 << g)
    for c in range(1 << (cluster_qubits - g)):
        rows = expand_index(c, x, list(positions))
        lifted[np.ix_(rows, rows)] = matrix
    return lifted


def fuse_gates(gates: Sequence[Gate], cluster_qubits: Sequence[int]) -> Gate:
    """Fuse an ordered gate sequence into one gate on *cluster_qubits*.

    ``cluster_qubits[j]`` is the qubit bound to bit ``j`` of the fused
    matrix.  Gates are applied left-to-right in circuit order, i.e. the
    fused matrix is ``U_last @ ... @ U_first``.

    Every gate's qubits must be a subset of *cluster_qubits*; the scheduler
    guarantees this by construction.
    """
    cluster_qubits = tuple(int(q) for q in cluster_qubits)
    if len(set(cluster_qubits)) != len(cluster_qubits):
        raise ValueError(f"duplicate qubits in cluster {cluster_qubits}")
    position_of = {q: i for i, q in enumerate(cluster_qubits)}
    k = len(cluster_qubits)
    fused = np.eye(1 << k, dtype=np.complex128)
    for gate in gates:
        try:
            positions = [position_of[q] for q in gate.qubits]
        except KeyError as exc:
            raise ValueError(
                f"gate {gate!r} acts outside cluster qubits {cluster_qubits}"
            ) from exc
        fused = lift_gate_matrix(gate.matrix, positions, k) @ fused
    name = "fused[" + ";".join(g.name for g in gates) + "]" if gates else "fused[id]"
    return Gate(name, cluster_qubits, fused)
