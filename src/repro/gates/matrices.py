"""Named gate matrices.

All matrices follow the little-endian convention used throughout this
package: for a multi-qubit gate bound to qubits ``(q0, q1, ...)``, bit 0 of
the matrix row/column index corresponds to ``q0``, bit 1 to ``q1``, etc.

The single-qubit set matches Sec. 2 of the paper exactly, including the
:data:`SQRT_X_MATRIX` and :data:`SQRT_Y_MATRIX` definitions used by the
Google quantum-supremacy circuits.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.util.rng import ensure_rng

__all__ = [
    "ID_MATRIX",
    "X_MATRIX",
    "Y_MATRIX",
    "Z_MATRIX",
    "H_MATRIX",
    "S_MATRIX",
    "SDG_MATRIX",
    "T_MATRIX",
    "TDG_MATRIX",
    "SQRT_X_MATRIX",
    "SQRT_Y_MATRIX",
    "CZ_MATRIX",
    "CNOT_MATRIX",
    "SWAP_MATRIX",
    "TOFFOLI_MATRIX",
    "rotation_matrix",
    "controlled_phase_matrix",
    "phase_matrix",
    "gate_matrix",
    "GateStructure",
    "GATE_STRUCTURE",
    "gate_structure",
    "random_unitary",
]

_C = np.complex128

ID_MATRIX = np.eye(2, dtype=_C)
X_MATRIX = np.array([[0, 1], [1, 0]], dtype=_C)
Y_MATRIX = np.array([[0, -1j], [1j, 0]], dtype=_C)
Z_MATRIX = np.array([[1, 0], [0, -1]], dtype=_C)
H_MATRIX = np.array([[1, 1], [1, -1]], dtype=_C) / math.sqrt(2)
S_MATRIX = np.array([[1, 0], [0, 1j]], dtype=_C)
SDG_MATRIX = S_MATRIX.conj().T
T_MATRIX = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=_C)
TDG_MATRIX = T_MATRIX.conj().T

#: X^(1/2) as defined in the paper: (1/2) [[1+i, 1-i], [1-i, 1+i]].
SQRT_X_MATRIX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=_C)
#: Y^(1/2) as defined in the paper: (1/2) [[1+i, -1-i], [1+i, 1+i]].
SQRT_Y_MATRIX = 0.5 * np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=_C)

CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(_C)
#: CNOT with control = qubit 0 (bit 0), target = qubit 1 (bit 1).
CNOT_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=_C
)
SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=_C
)
#: Toffoli with controls = qubits 0, 1 and target = qubit 2.
TOFFOLI_MATRIX = np.eye(8, dtype=_C)
TOFFOLI_MATRIX[[3, 7], :] = TOFFOLI_MATRIX[[7, 3], :]


def rotation_matrix(axis: str, theta: float) -> np.ndarray:
    """Single-qubit rotation ``exp(-i * theta/2 * P)`` for ``P`` in X/Y/Z."""
    axis = axis.lower()
    paulis = {"x": X_MATRIX, "y": Y_MATRIX, "z": Z_MATRIX}
    if axis not in paulis:
        raise ValueError(f"axis must be one of x, y, z; got {axis!r}")
    pauli = paulis[axis]
    return (
        math.cos(theta / 2) * ID_MATRIX - 1j * math.sin(theta / 2) * pauli
    ).astype(_C)


def phase_matrix(theta: float) -> np.ndarray:
    """Single-qubit phase gate ``diag(1, exp(i theta))``."""
    return np.diag([1.0, cmath.exp(1j * theta)]).astype(_C)


def controlled_phase_matrix(theta: float) -> np.ndarray:
    """Two-qubit controlled-phase ``diag(1, 1, 1, exp(i theta))``."""
    return np.diag([1.0, 1.0, 1.0, cmath.exp(1j * theta)]).astype(_C)


_NAMED: dict[str, np.ndarray] = {
    "id": ID_MATRIX,
    "i": ID_MATRIX,
    "x": X_MATRIX,
    "y": Y_MATRIX,
    "z": Z_MATRIX,
    "h": H_MATRIX,
    "s": S_MATRIX,
    "sdg": SDG_MATRIX,
    "t": T_MATRIX,
    "tdg": TDG_MATRIX,
    "x_1_2": SQRT_X_MATRIX,
    "sqrt_x": SQRT_X_MATRIX,
    "y_1_2": SQRT_Y_MATRIX,
    "sqrt_y": SQRT_Y_MATRIX,
    "cz": CZ_MATRIX,
    "cnot": CNOT_MATRIX,
    "cx": CNOT_MATRIX,
    "swap": SWAP_MATRIX,
    "toffoli": TOFFOLI_MATRIX,
    "ccx": TOFFOLI_MATRIX,
}


class GateStructure:
    """Static structure flags of a named gate matrix.

    ``diagonal`` gates have no off-diagonal entries; ``permutation`` gates
    are monomial (map basis states to basis states up to a phase).  Every
    diagonal matrix is also monomial.
    """

    __slots__ = ("diagonal", "permutation")

    def __init__(self, *, diagonal: bool, permutation: bool) -> None:
        self.diagonal = diagonal
        self.permutation = permutation

    def __repr__(self) -> str:
        return (
            f"GateStructure(diagonal={self.diagonal}, "
            f"permutation={self.permutation})"
        )


_DIAGONAL = GateStructure(diagonal=True, permutation=True)
_PERMUTATION = GateStructure(diagonal=False, permutation=True)
_DENSE = GateStructure(diagonal=False, permutation=False)

#: Structure flags per named gate — the compile-time answer to the
#: per-call ``np.allclose`` scans ``strategy="auto"`` used to run.
GATE_STRUCTURE: dict[str, GateStructure] = {
    "id": _DIAGONAL,
    "i": _DIAGONAL,
    "x": _PERMUTATION,
    "y": _PERMUTATION,
    "z": _DIAGONAL,
    "h": _DENSE,
    "s": _DIAGONAL,
    "sdg": _DIAGONAL,
    "t": _DIAGONAL,
    "tdg": _DIAGONAL,
    "x_1_2": _DENSE,
    "sqrt_x": _DENSE,
    "y_1_2": _DENSE,
    "sqrt_y": _DENSE,
    "cz": _DIAGONAL,
    "cnot": _PERMUTATION,
    "cx": _PERMUTATION,
    "swap": _PERMUTATION,
    "toffoli": _PERMUTATION,
    "ccx": _PERMUTATION,
}


def gate_structure(name: str) -> GateStructure | None:
    """Structure flags for a named gate, or ``None`` when unknown."""
    return GATE_STRUCTURE.get(name.lower())


def gate_matrix(name: str) -> np.ndarray:
    """Look up a named gate matrix (case-insensitive).

    Recognised names include the supremacy-circuit set (``h``, ``t``,
    ``x_1_2``, ``y_1_2``, ``cz``) and common extras (``cnot``, ``swap``,
    ``toffoli``...).  Returns a copy so callers may modify freely.
    """
    key = name.lower()
    if key not in _NAMED:
        raise KeyError(f"unknown gate name {name!r}; known: {sorted(_NAMED)}")
    return _NAMED[key].copy()


def random_unitary(num_qubits: int, seed=None) -> np.ndarray:
    """Haar-random unitary on *num_qubits* qubits (QR of a Ginibre matrix)."""
    rng = ensure_rng(seed)
    dim = 1 << num_qubits
    ginibre = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Fix the phase ambiguity of QR so the distribution is Haar.
    phases = np.diag(r) / np.abs(np.diag(r))
    return (q * phases).astype(_C)
