"""Quantum gate definitions, matrices, and fusion.

* :mod:`repro.gates.matrices` — the named unitaries used by quantum
  supremacy circuits (Sec. 2 of the paper) plus common extras.
* :mod:`repro.gates.gate` — the :class:`Gate` IR node: a named unitary
  bound to concrete qubit indices, with structure flags (diagonal,
  monomial/permutation) that drive the global-gate specialization of
  Sec. 3.5.
* :mod:`repro.gates.fusion` — lifting gates into a common k-qubit space
  and fusing gate sequences into single cluster matrices (Sec. 3.3/3.6.1).
"""

from repro.gates.gate import Gate
from repro.gates.fusion import fuse_gates, lift_gate_matrix
from repro.gates.matrices import (
    CNOT_MATRIX,
    CZ_MATRIX,
    H_MATRIX,
    ID_MATRIX,
    S_MATRIX,
    SQRT_X_MATRIX,
    SQRT_Y_MATRIX,
    SWAP_MATRIX,
    T_MATRIX,
    X_MATRIX,
    Y_MATRIX,
    Z_MATRIX,
    GATE_STRUCTURE,
    GateStructure,
    controlled_phase_matrix,
    gate_matrix,
    gate_structure,
    random_unitary,
    rotation_matrix,
)

__all__ = [
    "CNOT_MATRIX",
    "CZ_MATRIX",
    "GATE_STRUCTURE",
    "Gate",
    "GateStructure",
    "H_MATRIX",
    "ID_MATRIX",
    "S_MATRIX",
    "SQRT_X_MATRIX",
    "SQRT_Y_MATRIX",
    "SWAP_MATRIX",
    "T_MATRIX",
    "X_MATRIX",
    "Y_MATRIX",
    "Z_MATRIX",
    "controlled_phase_matrix",
    "fuse_gates",
    "gate_matrix",
    "gate_structure",
    "lift_gate_matrix",
    "random_unitary",
    "rotation_matrix",
]
