"""The :class:`Gate` IR node.

A :class:`Gate` binds a unitary matrix to concrete qubit indices and
carries the structural flags the rest of the stack dispatches on:

* ``is_diagonal`` — diagonal gates (CZ, T, Z, S, ...) applied to *global*
  qubits need no communication (Sec. 3.5 "global gate specialization");
* ``is_monomial`` — permutation-with-phases gates (X, CNOT, ...) applied
  to global qubits amount to a re-numbering of MPI ranks plus a per-rank
  phase (Sec. 3.5).
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

import numpy as np

from repro.gates.matrices import gate_matrix, gate_structure
from repro.util.validation import check_unitary

__all__ = ["Gate"]


class Gate:
    """A unitary bound to an ordered tuple of qubit indices.

    Parameters
    ----------
    name:
        Human-readable gate name (``"h"``, ``"cz"``, ``"fused"``, ...).
        Used for display, serialization and specialization dispatch.
    qubits:
        Target qubit indices.  ``qubits[0]`` corresponds to bit 0 of the
        matrix row/column index (little-endian), matching the index
        convention of Sec. 2 of the paper.
    matrix:
        Optional explicit ``2**k x 2**k`` unitary.  When omitted, the
        matrix is looked up by *name* in :func:`repro.gates.gate_matrix`.
    cycle:
        Optional clock-cycle tag assigned by circuit generators; purely
        metadata (used by schedulers for diagnostics).
    diagonal / permutation:
        Optional structure hints.  When given, ``is_diagonal`` /
        ``is_monomial`` trust them instead of scanning the matrix; when
        omitted and the matrix came from the named-gate table, the flags
        are filled from :data:`repro.gates.matrices.GATE_STRUCTURE`.
    """

    __slots__ = ("name", "qubits", "_matrix", "cycle", "__dict__")

    def __init__(
        self,
        name: str,
        qubits: Sequence[int],
        matrix: np.ndarray | None = None,
        *,
        cycle: int | None = None,
        diagonal: bool | None = None,
        permutation: bool | None = None,
    ) -> None:
        self.name = str(name)
        self.qubits: tuple[int, ...] = tuple(int(q) for q in qubits)
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in gate {name}: {self.qubits}")
        if matrix is None:
            matrix = gate_matrix(name)
            # The table matrix is authoritative for its name, so the static
            # structure flags apply.  An explicit matrix might differ from
            # what its name suggests — never trust the table for it.
            structure = gate_structure(self.name)
            if structure is not None:
                if diagonal is None:
                    diagonal = structure.diagonal
                if permutation is None:
                    permutation = structure.permutation
        matrix = check_unitary(matrix)
        expected_dim = 1 << len(self.qubits)
        if matrix.shape != (expected_dim, expected_dim):
            raise ValueError(
                f"gate {name!r} on {len(self.qubits)} qubit(s) needs a "
                f"{expected_dim}x{expected_dim} matrix, got {matrix.shape}"
            )
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self.cycle = cycle
        # Hints pre-seed the cached properties (they cache into __dict__),
        # so hinted gates never run the allclose scans below.
        if diagonal is not None:
            self.__dict__["is_diagonal"] = bool(diagonal)
            if diagonal and permutation is None:
                permutation = True
        if permutation is not None:
            self.__dict__["is_monomial"] = bool(permutation)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) ``2**k x 2**k`` unitary matrix."""
        return self._matrix

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on (``k``)."""
        return len(self.qubits)

    @cached_property
    def is_diagonal(self) -> bool:
        """True when the matrix is diagonal (e.g. CZ, T, Z, S)."""
        off_diag = self._matrix - np.diag(np.diagonal(self._matrix))
        return bool(np.allclose(off_diag, 0.0, atol=1e-12))

    @cached_property
    def is_monomial(self) -> bool:
        """True for permutation-with-phases matrices (e.g. X, CNOT, SWAP).

        Monomial gates map computational basis states to basis states (up to
        phase), so on global qubits they reduce to rank renumbering plus a
        per-rank phase — no state-vector data movement at all.
        """
        abs_matrix = np.abs(self._matrix)
        ones_per_row = np.isclose(abs_matrix, 1.0, atol=1e-12).sum(axis=1)
        zeros = np.isclose(abs_matrix, 0.0, atol=1e-12)
        return bool(
            np.all(ones_per_row == 1)
            and np.all(zeros.sum(axis=1) == abs_matrix.shape[1] - 1)
        )

    @cached_property
    def basis_permutation(self) -> np.ndarray | None:
        """For monomial gates: ``perm[j] = i`` such that ``U|j> = phase|i>``.

        Returns ``None`` for non-monomial gates.
        """
        if not self.is_monomial:
            return None
        return np.argmax(np.abs(self._matrix), axis=0)

    @cached_property
    def basis_phases(self) -> np.ndarray | None:
        """For monomial gates: ``phase[j]`` such that ``U|j> = phase[j]|perm[j]>``."""
        perm = self.basis_permutation
        if perm is None:
            return None
        return self._matrix[perm, np.arange(self._matrix.shape[0])]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def _known_structure(self) -> dict[str, bool | None]:
        """Already-resolved structure flags (never triggers a scan)."""
        return {
            "diagonal": self.__dict__.get("is_diagonal"),
            "permutation": self.__dict__.get("is_monomial"),
        }

    def dagger(self) -> "Gate":
        """Return the Hermitian adjoint as a new gate."""
        # Adjoints preserve both diagonality and monomial structure.
        return Gate(
            f"{self.name}_dg", self.qubits, self._matrix.conj().T,
            cycle=self.cycle, **self._known_structure(),
        )

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on re-mapped qubit indices (Sec. 3.6.2)."""
        new_qubits = tuple(mapping[q] for q in self.qubits)
        return Gate(
            self.name, new_qubits, self._matrix,
            cycle=self.cycle, **self._known_structure(),
        )

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate bound to different qubits."""
        return Gate(
            self.name, qubits, self._matrix,
            cycle=self.cycle, **self._known_structure(),
        )

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.name == other.name
            and self.qubits == other.qubits
            and np.array_equal(self._matrix, other._matrix)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.qubits, self._matrix.tobytes()))

    def __repr__(self) -> str:
        qubits = ",".join(map(str, self.qubits))
        return f"Gate({self.name!r}, q=[{qubits}])"
