"""Admission control: price a request before it can queue.

Every accepted job costs real memory and machine time, so the service
refuses work it cannot afford *before* queueing it, the way qHiPSTER
gates runs on available RAM.  The price comes from the same
:class:`~repro.perfmodel.TimelineModel` the paper-projection CLI uses —
driven by the job's actual schedule, not a guess — and the checks run
cheapest-first:

1. ``queue_full`` — global queued-job bound;
2. ``tenant_quota`` — per-tenant queued+running bound;
3. ``memory`` — full statevector footprint ``16 * 2**n`` bytes over
   budget;
4. ``predicted_time`` — ``TimelineModel.predict(schedule).total_seconds``
   over budget.

Each rejection increments ``service.jobs.rejected{reason=...}`` so SLO
dashboards can tell quota pressure from oversized requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel import (
    ARIES_DRAGONFLY,
    CORI_KNL_NODE,
    MachineSpec,
    NetworkSpec,
    TimelineModel,
)
from repro.telemetry.metrics import NULL_METRICS

__all__ = ["AdmissionController", "AdmissionDecision", "AdmissionPolicy"]

#: Bytes of one complex128 amplitude.
_AMPLITUDE_BYTES = 16


@dataclass(frozen=True)
class AdmissionPolicy:
    """Budgets the controller enforces.

    The defaults are generous for tests and laptop service instances;
    production deployments shrink them per machine.  ``machine`` /
    ``network`` select the :class:`TimelineModel` hardware the predicted
    seconds are priced on (Cori II by default, matching ``repro
    project``).
    """

    max_state_bytes: int = 1 << 34  # 16 GiB <=> 30 qubits at complex128
    max_predicted_seconds: float = 120.0
    max_queue_depth: int = 256
    max_tenant_active: int = 64
    machine: MachineSpec = field(default=CORI_KNL_NODE)
    network: NetworkSpec = field(default=ARIES_DRAGONFLY)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of pricing one request."""

    admitted: bool
    reason: str | None
    predicted_seconds: float
    state_bytes: int


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` to priced requests."""

    def __init__(self, policy: AdmissionPolicy | None = None, *, metrics=None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._model = TimelineModel(self.policy.machine, self.policy.network)
        self._metrics = metrics if metrics is not None else NULL_METRICS

    def price(self, schedule) -> tuple[float, int]:
        """``(predicted_seconds, state_bytes)`` for one run of *schedule*."""
        predicted = self._model.predict(schedule).total_seconds
        state_bytes = _AMPLITUDE_BYTES << schedule.num_qubits
        return predicted, state_bytes

    def evaluate(
        self,
        schedule,
        *,
        queue_depth: int,
        tenant_active: int,
    ) -> AdmissionDecision:
        """Admit or reject a request whose plan resolved to *schedule*.

        ``queue_depth`` is the global queued-job count at submission;
        ``tenant_active`` the submitting tenant's queued+running count.
        """
        policy = self.policy
        predicted, state_bytes = self.price(schedule)
        reason = None
        if queue_depth >= policy.max_queue_depth:
            reason = "queue_full"
        elif tenant_active >= policy.max_tenant_active:
            reason = "tenant_quota"
        elif state_bytes > policy.max_state_bytes:
            reason = "memory"
        elif predicted > policy.max_predicted_seconds:
            reason = "predicted_time"
        if reason is not None:
            self._metrics.counter("service.jobs.rejected", reason=reason).inc()
            return AdmissionDecision(False, reason, predicted, state_bytes)
        return AdmissionDecision(True, None, predicted, state_bytes)
