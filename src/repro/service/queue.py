"""Weighted-fair multi-tenant job queue.

Classic start-time fair queueing over tenants: each tenant owns a
virtual clock that advances by ``cost / weight`` whenever one of its
jobs is dispatched, and :meth:`FairQueue.pop` always serves the active
tenant with the *smallest* virtual time.  A tenant with weight 2 thus
gets twice the dispatch share of a weight-1 tenant under contention,
idle tenants accumulate no credit (their clock is bumped to the queue's
clock when they become active again), and a single-tenant queue
degenerates to plain priority order.

Within one tenant, jobs are ordered by ``(-priority, arrival)`` — higher
priority first, FIFO among equals.  Costs are the admission
controller's predicted seconds, so "fair" means fair *machine time*,
not fair job counts.

The queue is a plain synchronous structure (no locks, no asyncio): the
service mutates it only from the event-loop thread, and tests can drive
it directly.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.service.jobs import Job

__all__ = ["FairQueue"]

#: Floor on per-job cost so zero-cost predictions still advance clocks.
_MIN_COST = 1e-6


class FairQueue:
    """Priority queue fair-shared across tenants by weight."""

    def __init__(self, *, weights: dict[str, float] | None = None) -> None:
        self._weights = dict(weights or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ValueError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        #: Per-tenant heaps of (-priority, seq, job).
        self._heaps: dict[str, list[tuple[int, int, Job]]] = {}
        #: Per-tenant virtual clocks (persist across idle periods).
        self._vtime: dict[str, float] = {}
        #: Queue-wide virtual clock: vtime of the last dispatch.
        self._vclock = 0.0
        self._seq = 0
        self._size = 0

    # ------------------------------------------------------------------
    def weight(self, tenant: str) -> float:
        """The tenant's fair-share weight (default 1.0)."""
        return self._weights.get(tenant, 1.0)

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        """Number of queued jobs for *tenant*."""
        return len(self._heaps.get(tenant, ()))

    def tenants(self) -> list[str]:
        """Tenants with at least one queued job (sorted)."""
        return sorted(t for t, heap in self._heaps.items() if heap)

    def clocks(self) -> dict[str, float]:
        """Per-tenant virtual clocks (the ``/statusz`` fairness view)."""
        return dict(self._vtime)

    def jobs(self) -> Iterable[Job]:
        """Every queued job (no particular order)."""
        for heap in self._heaps.values():
            for _, _, job in heap:
                yield job

    # ------------------------------------------------------------------
    def push(self, job: Job, *, cost: float = 1.0) -> None:
        """Enqueue *job* with dispatch cost *cost* (predicted seconds)."""
        tenant = job.tenant
        heap = self._heaps.get(tenant)
        if heap is None:
            heap = self._heaps[tenant] = []
        if not heap:
            # Tenant (re)activates: forfeit credit accumulated while
            # idle, else a long-dormant tenant would monopolise the CPU.
            self._vtime[tenant] = max(
                self._vtime.get(tenant, 0.0), self._vclock
            )
        job.queue_cost = max(float(cost), _MIN_COST)
        heapq.heappush(heap, (-job.spec.priority, self._seq, job))
        self._seq += 1
        self._size += 1

    def pop(self) -> Job | None:
        """Dequeue the next job (weighted-fair across tenants)."""
        best = None
        for tenant, heap in self._heaps.items():
            if not heap:
                continue
            key = (self._vtime[tenant], tenant)
            if best is None or key < best[0]:
                best = (key, tenant, heap)
        if best is None:
            return None
        _, tenant, heap = best
        _, _, job = heapq.heappop(heap)
        self._size -= 1
        self._vclock = self._vtime[tenant]
        self._vtime[tenant] += job.queue_cost / self.weight(tenant)
        return job

    def remove(self, job: Job) -> bool:
        """Drop a queued job (cancellation); True when it was queued."""
        heap = self._heaps.get(job.tenant)
        if not heap:
            return False
        kept = [item for item in heap if item[2] is not job]
        if len(kept) == len(heap):
            return False
        heapq.heapify(kept)
        self._heaps[job.tenant] = kept
        self._size -= 1
        return True
