"""Cross-request caches: compiled plans and finished results.

Both caches are thread-safe LRUs keyed off
:meth:`Circuit.content_hash() <repro.circuit.Circuit.content_hash>`:

* :class:`PlanCache` — ``(circuit hash, local_qubits, kmax, PlanConfig)``
  maps to the
  scheduled :class:`~repro.scheduling.Schedule` plus its compiled
  :class:`~repro.plan.CompiledProgram`.  Scheduling + compilation is by
  far the most expensive per-request setup work, and supremacy-style
  service traffic repeats circuits heavily; a hit skips all of it and
  (because every rank and repetition also shares the process-wide
  :data:`~repro.kernels.GATHER_CACHE`) lands on fully warm kernels.
  Misses compile under the cache lock, so each key compiles exactly once
  no matter how many requests race on it.
* :class:`ResultCache` — ``(plan key, shots, seed)`` maps to a finished
  :class:`~repro.service.jobs.JobResult`; a hit completes the job
  without touching the worker pool at all.

Both expose ``stats()`` snapshots; the plan-cache hit rate is the
guarded number of ``bench_service_throughput``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.plan import PlanConfig, plan_for
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.service.jobs import JobResult, JobSpec
from repro.util.locktrack import TrackedLock

__all__ = ["PlanCache", "PlanEntry", "ResultCache"]


@dataclass(frozen=True)
class PlanEntry:
    """One shared compilation artifact: schedule + compiled program."""

    schedule: object
    program: object


class _LruMixin:
    """Shared locked-LRU plumbing (entries, counters, stats)."""

    def __init__(self, *, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = TrackedLock(
            f"repro.service.cache.{type(self).__name__}._lock"
        )
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def stats(self) -> dict:
        """Consistent counters snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PlanCache(_LruMixin):
    """Schedules + compiled plans shared across requests."""

    def __init__(self, *, capacity: int = 64) -> None:
        super().__init__(capacity=capacity)

    def get(
        self, spec: JobSpec, config: PlanConfig | None = None
    ) -> PlanEntry:
        """The (memoized) schedule + compiled plan for *spec*.

        Compile-once: concurrent misses on one key serialise on the
        cache lock and all but the first return the winner's entry.
        The cache key is ``(*spec.plan_key(), config)`` with the frozen
        :class:`~repro.plan.PlanConfig` carrying *every* compile option
        — two requests differing in any option (fusion width, chunk
        size, strategy, …) never share an entry.
        """
        config = config if config is not None else PlanConfig()
        key = (*spec.plan_key(), config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
            schedule = schedule_circuit(
                spec.circuit,
                SchedulerConfig(
                    local_qubits=spec.local_qubits, kmax=spec.kmax
                ),
            )
            entry = PlanEntry(
                schedule=schedule, program=plan_for(schedule, config)
            )
            self._entries[key] = entry
            self._evict()
            return entry


class ResultCache(_LruMixin):
    """Finished job results shared across requests."""

    def __init__(self, *, capacity: int = 256) -> None:
        super().__init__(capacity=capacity)

    def get(self, key: tuple) -> JobResult | None:
        """The cached result for *key*, marked ``from_cache``, or None."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return replace(result, from_cache=True)

    def put(self, key: tuple, result: JobResult) -> None:
        """Store a freshly computed *result* under *key*."""
        with self._lock:
            self._entries[key] = replace(result, from_cache=False)
            self._entries.move_to_end(key)
            self._evict()
