"""Async multi-tenant simulation job engine (the service layer).

The rest of the stack runs one circuit well; this package runs *many at
once* for many users.  A :class:`SimulationService` accepts typed
:class:`JobSpec` requests, admission-controls them against a
:class:`~repro.perfmodel.TimelineModel` price (memory footprint,
predicted seconds, queue depth, per-tenant quotas), orders the admitted
jobs with a weighted-fair multi-tenant queue, and executes them
concurrently on a bounded worker pool — every job running through the
one canonical :class:`~repro.runtime.ExecutionEngine` op loop with a
per-job tracing layer, so results stay bit-exact with serial execution
and each job carries its determinism-anchoring trace ``signature()``.

Cross-request reuse is the point: a :class:`PlanCache` shares schedules
and compiled :class:`~repro.plan.CompiledProgram`\\ s between requests
keyed on :meth:`Circuit.content_hash() <repro.circuit.Circuit.content_hash>`,
a :class:`ResultCache` returns finished results without re-execution,
and the process-wide :data:`~repro.kernels.GATHER_CACHE` (now
thread-safe) serves gather tables to every worker thread.  Per-tenant
SLO metrics (``service.jobs.completed{tenant=}``, queue-wait
histograms, admission rejections) ride the existing
:mod:`repro.telemetry` registry.

``repro serve`` exposes the engine over a local JSON-lines TCP socket;
``repro submit`` is its client.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.cache import PlanCache, PlanEntry, ResultCache
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobResult,
    JobSpec,
    JobStatus,
    state_fingerprint,
)
from repro.service.queue import FairQueue
from repro.service.scheduler import CancelLayer, execute_job
from repro.service.server import (
    ServiceConfig,
    SimulationService,
    request,
    serve,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "CancelLayer",
    "FairQueue",
    "Job",
    "JobCancelled",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "PlanCache",
    "PlanEntry",
    "ResultCache",
    "ServiceConfig",
    "SimulationService",
    "execute_job",
    "request",
    "serve",
    "state_fingerprint",
]
