"""Typed simulation jobs: specs, lifecycle states and results.

A :class:`JobSpec` is the immutable request a tenant submits; a
:class:`Job` is the service's mutable record of one submission moving
through the lifecycle::

    PENDING -> QUEUED -> RUNNING -> COMPLETED
        \\-> REJECTED        \\-> CANCELLED | TIMEOUT | FAILED

``REJECTED`` is the admission controller refusing the job before it ever
queues; ``CANCELLED``/``TIMEOUT`` ride the same cooperative mechanism (a
:class:`threading.Event` the in-engine
:class:`~repro.service.scheduler.CancelLayer` polls at op boundaries).

A :class:`JobResult` carries the determinism anchors the rest of the
repo is built on: the sha256 fingerprint of the final statevector bytes
and the trace ``signature()`` (plus its digest), so bit-exactness of a
concurrent run against a serial reference is a simple equality check.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from dataclasses import dataclass, field

from repro.circuit import Circuit

__all__ = [
    "Job",
    "JobCancelled",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "TERMINAL_STATUSES",
    "signature_digest",
    "state_fingerprint",
]


class JobStatus(str, enum.Enum):
    """Lifecycle state of a submitted job."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"
    FAILED = "failed"


#: States a job never leaves.
TERMINAL_STATUSES = frozenset(
    {
        JobStatus.COMPLETED,
        JobStatus.REJECTED,
        JobStatus.CANCELLED,
        JobStatus.TIMEOUT,
        JobStatus.FAILED,
    }
)


class JobCancelled(Exception):
    """Raised inside the engine when a job's cancel event is set."""


@dataclass(frozen=True)
class JobSpec:
    """One tenant's immutable simulation request.

    ``priority`` orders jobs *within* a tenant (higher first, FIFO among
    equals); fairness *across* tenants is the queue's weighted-fair
    scheduling, so one tenant cannot starve another with high
    priorities.  ``use_result_cache=False`` opts a request out of the
    completed-result cache (e.g. throughput benchmarking).
    """

    tenant: str
    circuit: Circuit
    local_qubits: int
    kmax: int = 5
    priority: int = 0
    shots: int = 0
    seed: int = 0
    timeout_seconds: float | None = None
    use_result_cache: bool = True
    #: Client-minted correlation id (``repro submit`` puts one on the
    #: wire); the service mints one when absent.  Deliberately excluded
    #: from plan_key/result_key — trace identity never splits caches.
    trace_id: str | None = None
    #: Execute with a :class:`~repro.runtime.PipelineLayer` (lookahead
    #: table prefetch).  Excluded from plan_key/result_key: pipelined and
    #: serial runs are bit-identical, so their results may share a cache
    #: entry.
    pipeline: bool = False

    def plan_key(self) -> tuple:
        """Key under which requests share one schedule + compiled plan."""
        return (self.circuit.content_hash(), self.local_qubits, self.kmax)

    def result_key(self) -> tuple:
        """Key under which finished results are shared across requests."""
        return (*self.plan_key(), self.shots, self.seed)


def state_fingerprint(statevector) -> str:
    """sha256 hex digest of the final state's amplitude bytes."""
    return hashlib.sha256(statevector.data.tobytes()).hexdigest()


def signature_digest(signature) -> str:
    """sha256 hex digest of a trace ``signature()`` event list."""
    h = hashlib.sha256()
    for event in signature:
        h.update(repr(event).encode("utf-8"))
    return h.hexdigest()


@dataclass
class JobResult:
    """Terminal outcome of one job.

    ``signature`` is the full timing-free trace identity (kept in-process
    for parity tests); only its ``signature_digest`` goes over the wire.
    ``from_cache`` marks results served by the
    :class:`~repro.service.cache.ResultCache` without execution.
    """

    status: JobStatus
    fingerprint: str | None = None
    signature: list | None = None
    signature_digest: str | None = None
    wall_seconds: float = 0.0
    from_cache: bool = False
    samples: dict[int, int] | None = None
    error: str | None = None
    #: Correlation id of the job that produced this result.  Stamped by
    #: the service at finish time, so a cache-served result carries the
    #: *requesting* job's id, not the original producer's.
    trace_id: str | None = None

    def payload(self, num_qubits: int | None = None) -> dict:
        """JSON-ready summary (the wire/CLI view of this result)."""
        samples = None
        if self.samples is not None:
            width = num_qubits or 0
            samples = {
                format(outcome, f"0{width}b"): count
                for outcome, count in sorted(self.samples.items())
            }
        return {
            "status": self.status.value,
            "fingerprint": self.fingerprint,
            "signature_digest": self.signature_digest,
            "wall_seconds": self.wall_seconds,
            "from_cache": self.from_cache,
            "samples": samples,
            "error": self.error,
            "trace_id": self.trace_id,
        }


@dataclass
class Job:
    """The service's mutable record of one submission."""

    job_id: str
    spec: JobSpec
    #: End-to-end correlation id: spec-supplied or service-minted at
    #: submit; threads through spans, flight-recorder records and the
    #: response payload.
    trace_id: str = ""
    status: JobStatus = JobStatus.PENDING
    result: JobResult | None = None
    #: Admission verdict (set before queueing; None for cache hits).
    decision: object | None = None
    #: Event-loop timestamps (``loop.time()`` domain).
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Cooperative cancellation: polled by CancelLayer at op boundaries.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    cancel_reason: str | None = None
    #: Resolved with the JobResult when the job reaches a terminal state.
    future: object | None = None
    #: Plan-cache entry the worker executes (set at admission).
    plan_entry: object | None = None
    #: Flight recorder the worker streams op attempts into (service-set;
    #: rides the job so monkeypatched execute_job fakes keep their
    #: one-argument signature).
    recorder: object | None = None
    #: Queue bookkeeping (set by FairQueue.push).
    queue_cost: float = 0.0

    @property
    def tenant(self) -> str:
        """The owning tenant (quota and fairness unit)."""
        return self.spec.tenant

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status in TERMINAL_STATUSES

    def request_cancel(self, reason: str = "cancelled") -> None:
        """Ask a queued/running job to stop (first reason wins)."""
        if self.cancel_reason is None:
            self.cancel_reason = reason
        self.cancel_event.set()
