"""Job execution on the canonical engine: the worker-thread half.

:func:`execute_job` is the synchronous body the service's worker pool
runs inside a thread: it replays the job's shared compiled plan through
one :class:`~repro.runtime.ExecutionEngine` with a per-job
:class:`~repro.runtime.TracingLayer` (the determinism anchor) and a
:class:`CancelLayer` (cooperative cancellation/timeout at op
boundaries), then reduces the final state to the result payload —
fingerprint, trace signature, optional bitstring samples.

Nothing here touches the event loop; shared mutable state is limited to
the thread-safe plan/gather caches, which is what makes N of these
running concurrently bit-exact with running them serially.
"""

from __future__ import annotations

import time

from repro.runtime import ExecutionEngine, TracingLayer
from repro.runtime.layers import FlightRecorderLayer, RuntimeLayer
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobResult,
    JobStatus,
    signature_digest,
    state_fingerprint,
)
from repro.statevector import sample_counts

__all__ = ["CancelLayer", "execute_job"]


class CancelLayer(RuntimeLayer):
    """Aborts a run when the job's cancel event is set.

    Polled in ``before_op``: cancellation/timeout takes effect at the
    next op boundary, never mid-kernel, so a cancelled job tears down
    with its state machine consistent (and without needing the retry
    machinery — :class:`~repro.service.jobs.JobCancelled` is not a
    fault, it escapes the engine directly).
    """

    def __init__(self, job: Job) -> None:
        self._job = job

    def before_op(self, ctx, unit) -> None:
        if self._job.cancel_event.is_set():
            raise JobCancelled(self._job.cancel_reason or "cancelled")


def execute_job(job: Job, recorder=None) -> JobResult:
    """Run one admitted job to completion (worker-thread body).

    Raises :class:`JobCancelled` when the job was cancelled or timed
    out mid-run; any other exception is the job failing.  When the
    service passes its :class:`~repro.telemetry.recorder.FlightRecorder`,
    a :class:`~repro.runtime.FlightRecorderLayer` streams this run's op
    attempts into the ring tagged with the job's ``trace_id``.

    The extra layer sits *after* the tracing layer and records only —
    trace ``signature()`` parity with the bare two-layer stack is an
    invariant the observability tests pin.
    """
    spec = job.spec
    entry = job.plan_entry
    start = time.perf_counter()
    if recorder is None:
        recorder = job.recorder
    layers = [TracingLayer(), CancelLayer(job)]
    if recorder is not None:
        layers.append(
            FlightRecorderLayer(recorder, trace_id=job.trace_id or None)
        )
    if spec.pipeline:
        from repro.runtime import PipelineLayer

        layers.append(
            PipelineLayer(recorder=recorder, trace_id=job.trace_id or None)
        )
    root_attrs = {"job_id": job.job_id, "tenant": spec.tenant}
    if job.trace_id:
        root_attrs["trace_id"] = job.trace_id
    engine = ExecutionEngine(
        entry.program,
        layers=layers,
        root_attrs=root_attrs,
    )
    run = engine.run()
    statevector = run.state.to_statevector()
    samples = None
    if spec.shots:
        samples = sample_counts(statevector, spec.shots, seed=spec.seed)
    signature = run.trace.signature()
    return JobResult(
        status=JobStatus.COMPLETED,
        fingerprint=state_fingerprint(statevector),
        signature=signature,
        signature_digest=signature_digest(signature),
        wall_seconds=time.perf_counter() - start,
        samples=samples,
    )
