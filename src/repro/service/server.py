"""The :class:`SimulationService` orchestrator and its TCP front end.

The service runs on one asyncio event loop that owns all bookkeeping
(jobs table, fair queue, metrics); only :func:`execute_job` bodies leave
the loop, onto a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
— so ``max_workers`` bounds concurrent engine runs while submissions,
cancellations and status queries stay responsive.  A submission flows::

    submit -> result-cache probe -> plan-cache get/compile
           -> admission (quota / memory / predicted-time)
           -> weighted-fair queue -> worker -> result cache + metrics

Per-tenant SLO metrics ride the telemetry registry:
``service.jobs.submitted{tenant=}``, ``...completed{tenant=}``,
``...rejected{reason=}``, ``...cancelled{tenant=}``,
``...failed{tenant=}``, queue-wait and execution-seconds histograms
(``service.queue.wait_seconds{tenant=}``,
``service.exec.seconds{tenant=}``), plus pull-model gauges refreshed at
read time (``service.queue.depth{tenant=}``, ``service.inflight``,
``service.uptime.seconds``).

The live observability plane hangs off the same instance: every status
change appends a ``transition`` record (tagged with the job's
``trace_id``) to the service's :class:`FlightRecorder`, the worker
threads stream per-op ``span`` records into the same ring, failed and
timed-out jobs dump a JSONL postmortem bundle to
``ServiceConfig.postmortem_dir``, and :meth:`SimulationService.
exposition_server` wires ``/metrics`` / ``/healthz`` / ``/statusz`` to
the registry, :meth:`SimulationService.health_view` and
:meth:`SimulationService.status_view`.

:func:`serve` exposes a service over a local JSON-lines TCP socket
(one JSON request per line, one JSON response per line) and
:func:`request` is the matching blocking client — the transport behind
``repro serve`` / ``repro submit``.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.cache import PlanCache, ResultCache
from repro.service.jobs import Job, JobCancelled, JobResult, JobSpec, JobStatus
from repro.service.queue import FairQueue
from repro.service.scheduler import execute_job
from repro.telemetry import MetricsRegistry
from repro.telemetry.live import ExpositionServer
from repro.telemetry.recorder import FlightRecorder

__all__ = ["ServiceConfig", "SimulationService", "request", "serve"]


@dataclass(frozen=True)
class ServiceConfig:
    """Construction-time knobs of one service instance."""

    max_workers: int = 4
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    tenant_weights: dict[str, float] | None = None
    plan_cache_capacity: int = 64
    result_cache_capacity: int = 256
    #: When set, rebounds the process-wide GATHER_CACHE at startup.
    gather_cache_capacity: int | None = None
    collect_metrics: bool = True
    #: Ring capacity of the service's flight recorder.
    flight_recorder_capacity: int = 4096
    #: When set, failed / timed-out jobs dump a JSONL postmortem bundle
    #: (``<job_id>-<trace_id>.jsonl``) into this directory.
    postmortem_dir: str | None = None


class SimulationService:
    """Accepts, admission-controls and concurrently executes jobs."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry(enabled=self.config.collect_metrics)
        self.plans = PlanCache(capacity=self.config.plan_cache_capacity)
        self.results = ResultCache(
            capacity=self.config.result_cache_capacity
        )
        self.admission = AdmissionController(
            self.config.admission, metrics=self.metrics
        )
        self.queue = FairQueue(weights=self.config.tenant_weights)
        self.recorder = FlightRecorder(self.config.flight_recorder_capacity)
        self.jobs: dict[str, Job] = {}
        self._running: set[str] = set()
        self._seen_tenants: set[str] = set()
        self._started_monotonic: float | None = None
        self._next_id = 0
        self._executor: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        self._wakeup: asyncio.Condition | None = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker pool on the running event loop."""
        if self._workers:
            raise RuntimeError("service already started")
        if self.config.gather_cache_capacity is not None:
            from repro.kernels import GATHER_CACHE

            GATHER_CACHE.set_capacity(self.config.gather_cache_capacity)
        self._closing = False
        self._wakeup = asyncio.Condition()
        # One spare thread beyond the worker count: submission-time plan
        # compiles must never queue behind a fully busy job pool.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers + 1,
            thread_name_prefix="repro-service",
        )
        self._workers = [
            asyncio.create_task(self._worker(), name=f"service-worker-{i}")
            for i in range(self.config.max_workers)
        ]
        self._started_monotonic = time.monotonic()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop the workers (after finishing queued work when *drain*)."""
        if drain:
            await self.drain()
        else:
            for job in list(self.queue.jobs()):
                self.queue.remove(job)
                self._finish_queued_cancel(job, "shutdown")
            for job_id in list(self._running):
                self.jobs[job_id].request_cancel("shutdown")
        self._closing = True
        async with self._wakeup:
            self._wakeup.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            # Draining the worker threads blocks until in-flight jobs
            # finish; hand the join to a default-executor thread so the
            # loop (and any other service on it) stays responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, executor.shutdown
            )

    async def drain(self) -> None:
        """Wait until every submitted job reaches a terminal state."""
        pending = [
            job.future
            for job in self.jobs.values()
            if job.future is not None and not job.future.done()
        ]
        if pending:
            await asyncio.gather(*pending)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _tenant_active(self, tenant: str) -> int:
        running = sum(
            1 for job_id in self._running if self.jobs[job_id].tenant == tenant
        )
        return self.queue.depth(tenant) + running

    async def submit(self, spec: JobSpec) -> Job:
        """Admit (or reject) *spec*; returns its :class:`Job` record.

        Never raises for policy outcomes — rejection, like completion,
        is a terminal status on the returned job.
        """
        if not self._workers:
            raise RuntimeError("service not started (call start())")
        loop = asyncio.get_running_loop()
        self._next_id += 1
        job = Job(
            job_id=f"job-{self._next_id:06d}",
            spec=spec,
            trace_id=spec.trace_id or uuid.uuid4().hex[:16],
        )
        job.future = loop.create_future()
        job.submitted_at = loop.time()
        self.jobs[job.job_id] = job
        self._seen_tenants.add(spec.tenant)
        self._record_transition(job)
        self.metrics.counter(
            "service.jobs.submitted", tenant=spec.tenant
        ).inc()

        if spec.use_result_cache:
            cached = self.results.get(spec.result_key())
            if cached is not None:
                self._finish(job, JobStatus.COMPLETED, cached)
                return job

        # Scheduling + compilation is CPU work; keep it off the loop.
        job.plan_entry = await loop.run_in_executor(
            self._executor, self.plans.get, spec
        )
        decision = self.admission.evaluate(
            job.plan_entry.schedule,
            queue_depth=len(self.queue),
            tenant_active=self._tenant_active(spec.tenant),
        )
        job.decision = decision
        if not decision.admitted:
            self._finish(
                job,
                JobStatus.REJECTED,
                JobResult(status=JobStatus.REJECTED, error=decision.reason),
            )
            return job

        job.status = JobStatus.QUEUED
        self._record_transition(job)
        self.queue.push(job, cost=decision.predicted_seconds)
        async with self._wakeup:
            self._wakeup.notify()
        return job

    async def wait(self, job: Job) -> JobResult:
        """Await the job's terminal :class:`JobResult`."""
        return await job.future

    def cancel(self, job_id: str, *, reason: str = "cancelled") -> bool:
        """Cancel a queued or running job; False when already terminal."""
        job = self.jobs.get(job_id)
        if job is None or job.done:
            return False
        if self.queue.remove(job):
            self._finish_queued_cancel(job, reason)
            return True
        job.request_cancel(reason)
        return True

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            async with self._wakeup:
                while not len(self.queue) and not self._closing:
                    await self._wakeup.wait()
                if self._closing and not len(self.queue):
                    return
                job = self.queue.pop()
            if job is None:
                continue
            if job.cancel_event.is_set():
                self._finish_queued_cancel(
                    job, job.cancel_reason or "cancelled"
                )
                continue
            await self._run_job(loop, job)

    async def _run_job(self, loop, job: Job) -> None:
        job.status = JobStatus.RUNNING
        self._record_transition(job)
        job.recorder = self.recorder
        self._running.add(job.job_id)
        job.started_at = loop.time()
        self.metrics.histogram(
            "service.queue.wait_seconds", tenant=job.tenant
        ).observe(job.started_at - job.submitted_at)
        timeout_handle = None
        if job.spec.timeout_seconds is not None:
            timeout_handle = loop.call_later(
                job.spec.timeout_seconds, job.request_cancel, "timeout"
            )
        try:
            result = await loop.run_in_executor(
                self._executor, execute_job, job
            )
        except JobCancelled:
            status = (
                JobStatus.TIMEOUT
                if job.cancel_reason == "timeout"
                else JobStatus.CANCELLED
            )
            result = JobResult(status=status, error=job.cancel_reason)
            self._finish(job, status, result)
        except Exception as exc:  # job code failed; service stays up
            result = JobResult(
                status=JobStatus.FAILED,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._finish(job, JobStatus.FAILED, result)
        else:
            if job.spec.use_result_cache:
                self.results.put(job.spec.result_key(), result)
            self.metrics.histogram(
                "service.exec.seconds", tenant=job.tenant
            ).observe(result.wall_seconds)
            self._finish(job, JobStatus.COMPLETED, result)
        finally:
            if timeout_handle is not None:
                timeout_handle.cancel()
            self._running.discard(job.job_id)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _finish(self, job: Job, status: JobStatus, result: JobResult) -> None:
        job.status = status
        job.result = result
        result.trace_id = job.trace_id
        self._record_transition(job, error=result.error)
        try:
            job.finished_at = asyncio.get_running_loop().time()
        except RuntimeError:  # pragma: no cover - loop teardown
            pass
        key = {
            JobStatus.COMPLETED: "service.jobs.completed",
            JobStatus.CANCELLED: "service.jobs.cancelled",
            JobStatus.TIMEOUT: "service.jobs.cancelled",
            JobStatus.FAILED: "service.jobs.failed",
        }.get(status)
        if key is not None:
            self.metrics.counter(key, tenant=job.tenant).inc()
        if status in (JobStatus.FAILED, JobStatus.TIMEOUT) or (
            status is JobStatus.CANCELLED and job.cancel_reason == "shutdown"
        ):
            self.dump_postmortem(job)
        if job.future is not None and not job.future.done():
            job.future.set_result(result)

    def _finish_queued_cancel(self, job: Job, reason: str) -> None:
        job.request_cancel(reason)
        self._finish(
            job,
            JobStatus.CANCELLED,
            JobResult(status=JobStatus.CANCELLED, error=reason),
        )

    def _record_transition(self, job: Job, *, error: str | None = None) -> None:
        """Append the job's current state to the flight-recorder ring."""
        fields = {
            "trace_id": job.trace_id,
            "job_id": job.job_id,
            "tenant": job.tenant,
            "status": job.status.value,
        }
        if error is not None:
            fields["error"] = error
        self.recorder.record("transition", **fields)

    def dump_postmortem(self, job: Job) -> str | None:
        """Write the job's flight-recorder bundle; returns its path.

        The bundle is the ring filtered to the job's ``trace_id``:
        state transitions, op-attempt spans, and any lock events the
        tracker streamed in — one JSON object per line.  No-op without a
        configured ``postmortem_dir``.
        """
        directory = self.config.postmortem_dir
        if directory is None or not job.trace_id:
            return None
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{job.job_id}-{job.trace_id}.jsonl")
        self.recorder.dump_jsonl(path, trace_id=job.trace_id)
        return path

    # ------------------------------------------------------------------
    # Live observability plane
    # ------------------------------------------------------------------
    def uptime_seconds(self) -> float:
        """Seconds since :meth:`start` (0.0 before the first start)."""
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _refresh_gauges(self) -> None:
        """Mirror queue/in-flight/uptime into the registry.

        Pull model: refreshed when something reads the metrics (a
        scrape, ``stats()``, ``/statusz``), never on the submit/dispatch
        hot path.  Tenants the service has ever seen keep their
        ``service.queue.depth`` gauge (zeroed when idle), so a scraper
        watches depth fall rather than the series vanishing.
        """
        if not self.metrics.enabled:
            return
        self.metrics.gauge("service.inflight").set(len(self._running))
        self.metrics.gauge("service.uptime.seconds").set(
            self.uptime_seconds()
        )
        for tenant in sorted(self._seen_tenants):
            self.metrics.gauge("service.queue.depth", tenant=tenant).set(
                self.queue.depth(tenant)
            )

    def health_view(self) -> tuple[bool, str]:
        """Liveness + saturation verdict for ``/healthz``."""
        if not self._workers or self._closing:
            return False, "no workers running"
        dead = sorted(
            task.get_name() for task in self._workers if task.done()
        )
        if dead:
            return False, f"dead workers: {', '.join(dead)}"
        depth = len(self.queue)
        limit = self.admission.policy.max_queue_depth
        if depth >= limit:
            return False, f"queue saturated ({depth}/{limit})"
        return True, f"ok workers={len(self._workers)} queued={depth}"

    def status_view(self) -> dict:
        """The ``/statusz`` JSON page: fairness, load, caches, uptime."""
        self._refresh_gauges()
        clocks = self.queue.clocks()
        tenants: dict[str, dict] = {}
        for tenant in sorted(self._seen_tenants):
            tenants[tenant] = {
                "queued": 0,
                "running": 0,
                "done": 0,
                "rejected": {},
                "virtual_clock": clocks.get(tenant, 0.0),
                "p95_queue_wait_seconds": self.metrics.histogram(
                    "service.queue.wait_seconds", tenant=tenant
                ).quantile(0.95),
            }
        for job in self.jobs.values():
            view = tenants.get(job.tenant)
            if view is None:  # pragma: no cover - tenants tracks jobs
                continue
            if job.status is JobStatus.QUEUED:
                view["queued"] += 1
            elif job.status is JobStatus.RUNNING:
                view["running"] += 1
            elif job.done:
                view["done"] += 1
            if job.status is JobStatus.REJECTED and job.result is not None:
                reason = job.result.error or "unknown"
                view["rejected"][reason] = view["rejected"].get(reason, 0) + 1
        return {
            "uptime_seconds": self.uptime_seconds(),
            "queue_depth": len(self.queue),
            "inflight": sorted(self._running),
            "tenants": tenants,
            "plan_cache": self.plans.stats(),
            "result_cache": self.results.stats(),
            "flight_recorder": self.recorder.stats(),
        }

    def exposition_server(self) -> ExpositionServer:
        """A live-plane HTTP server wired to this service.

        ``/metrics`` renders the service registry (gauges refreshed per
        scrape), ``/healthz`` maps :meth:`health_view` to 200/503, and
        ``/statusz`` serves :meth:`status_view` — start it on the
        service's event loop (``repro serve --metrics-port`` does).
        """
        return ExpositionServer(
            self.metrics,
            status_provider=self.status_view,
            health_provider=self.health_view,
            on_scrape=self._refresh_gauges,
        )

    def stats(self) -> dict:
        """JSON-ready service snapshot (the ``stats`` wire op)."""
        from repro.kernels import GATHER_CACHE

        self._refresh_gauges()
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status.value] = (
                by_status.get(job.status.value, 0) + 1
            )
        return {
            "jobs": by_status,
            "queue_depth": len(self.queue),
            "running": len(self._running),
            "uptime_seconds": self.uptime_seconds(),
            "plan_cache": self.plans.stats(),
            "result_cache": self.results.stats(),
            "gather_cache": GATHER_CACHE.stats(),
            "flight_recorder": self.recorder.stats(),
            "metrics": self.metrics.snapshot(),
        }


# ----------------------------------------------------------------------
# JSON-lines TCP front end
# ----------------------------------------------------------------------
def _spec_from_wire(message: dict) -> JobSpec:
    from repro.circuit import circuit_from_text

    circuit = circuit_from_text(message["circuit"])
    return JobSpec(
        tenant=str(message.get("tenant", "default")),
        circuit=circuit,
        local_qubits=int(message["local_qubits"]),
        kmax=int(message.get("kmax", 5)),
        priority=int(message.get("priority", 0)),
        shots=int(message.get("shots", 0)),
        seed=int(message.get("seed", 0)),
        timeout_seconds=(
            float(message["timeout_seconds"])
            if message.get("timeout_seconds") is not None
            else None
        ),
        use_result_cache=bool(message.get("use_result_cache", True)),
        trace_id=(
            str(message["trace_id"])
            if message.get("trace_id") is not None
            else None
        ),
        pipeline=bool(message.get("pipeline", False)),
    )


def _job_view(job: Job) -> dict:
    view = {
        "job_id": job.job_id,
        "status": job.status.value,
        "trace_id": job.trace_id,
    }
    if job.result is not None:
        view["result"] = job.result.payload(job.spec.circuit.num_qubits)
    if job.decision is not None:
        view["predicted_seconds"] = job.decision.predicted_seconds
        view["state_bytes"] = job.decision.state_bytes
    return view


async def _handle_message(service: SimulationService, message: dict) -> dict:
    op = message.get("op")
    if op == "submit":
        # Circuit parsing is CPU work proportional to the wire payload;
        # keep it off the loop like the plan compile it precedes.
        spec = await asyncio.get_running_loop().run_in_executor(
            service._executor, _spec_from_wire, message
        )
        job = await service.submit(spec)
        if message.get("wait", True) and not job.done:
            await service.wait(job)
        return {"ok": True, **_job_view(job)}
    if op == "status":
        job = service.jobs.get(message.get("job_id", ""))
        if job is None:
            return {"ok": False, "error": "unknown job_id"}
        return {"ok": True, **_job_view(job)}
    if op == "cancel":
        cancelled = service.cancel(
            message.get("job_id", ""),
            reason=message.get("reason", "cancelled"),
        )
        return {"ok": cancelled}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    return {"ok": False, "error": f"unknown op {op!r}"}


async def serve(
    service: SimulationService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start the JSON-lines TCP front end for a started *service*."""

    async def handle(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                    response = await _handle_message(service, message)
                except Exception as exc:
                    response = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)


def request(host: str, port: int, message: dict, *, timeout: float = 300.0) -> dict:
    """Blocking one-shot client: send *message*, return the response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(message).encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)
