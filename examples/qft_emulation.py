"""Simulation vs emulation: the quantum Fourier transform.

The paper's related-work section draws the line between circuit
*simulation* (gate-by-gate, what this library does for supremacy
circuits) and *emulation* — classical shortcuts for operations whose
action is known in advance [7].  The QFT is the canonical example: its
gate circuit needs O(n^2) full-state sweeps, but its action is exactly a
(scaled) inverse FFT — one O(N log N) pass.

This example measures both routes, confirms they agree to machine
precision, and shows why no such shortcut exists for supremacy circuits
(their unitaries carry no exploitable structure — that is the point of
random circuits).

Run:  python examples/qft_emulation.py
"""

import time

from repro import StateVector, Simulator, generate_supremacy_circuit
from repro.analysis import porter_thomas_kl_divergence
from repro.emulation import apply_qft_emulated, apply_qft_gates, qft_circuit
from repro.util.rng import random_statevector


def main() -> None:
    print(f"{'qubits':>6} {'gates':>6} {'gate-by-gate':>13} {'FFT emulation':>14} {'speedup':>8}")
    for n in (8, 12, 16, 18):
        data = random_statevector(n, n)

        start = time.perf_counter()
        via_gates = StateVector(n, data.copy())
        apply_qft_gates(via_gates)
        gate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        via_fft = StateVector(n, data.copy())
        apply_qft_emulated(via_fft)
        fft_seconds = time.perf_counter() - start

        assert via_fft.allclose(via_gates, atol=1e-8), "emulation mismatch!"
        print(
            f"{n:>6} {len(qft_circuit(n)):>6} {gate_seconds:>12.4f}s "
            f"{fft_seconds:>13.4f}s {gate_seconds / fft_seconds:>7.1f}x"
        )

    print("\nWhy no shortcut for supremacy circuits: their output is")
    print("Porter-Thomas-random (no structure an emulator could exploit),")
    print("while the QFT of |0...0> is a single uniform superposition.")
    n = 12
    supremacy = Simulator(n).run(generate_supremacy_circuit(n, 20, seed=0)).state
    qft_state = StateVector(n)
    apply_qft_emulated(qft_state)
    print(
        f"KL-to-Porter-Thomas: supremacy output "
        f"{porter_thomas_kl_divergence(supremacy.probabilities(), n):.4f} (random), "
        f"QFT output {porter_thomas_kl_divergence(qft_state.probabilities(), n):.1f} "
        f"(structured)"
    )


if __name__ == "__main__":
    main()
