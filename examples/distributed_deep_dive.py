"""Deep dive into the multi-node machinery (Secs. 3.4-3.5).

Walks through the distributed layer's moving parts on a 12-qubit state
split across 16 virtual nodes:

* gates on local qubits run without communication,
* diagonal gates (CZ, T) on *global* qubits specialize to per-rank
  phases — zero communication,
* monomial gates (X, CNOT) on global qubits become rank renumberings,
* a dense gate on a global qubit forces a global-to-local swap — one
  group-local all-to-all (Fig. 3),
* per-gate execution vs a scheduled program: the scheduled run needs a
  fraction of the communication steps.

Run:  python examples/distributed_deep_dive.py
"""

from repro import (
    DistributedSimulator,
    DistributedState,
    Gate,
    SchedulerConfig,
    Simulator,
    generate_supremacy_circuit,
    schedule_circuit,
)


def main() -> None:
    n, l = 12, 8  # 16 virtual nodes x 256 amplitudes

    print("=== gate specialization on global qubits ===")
    state = DistributedState(n, l, init="plus")
    print(f"layout: local qubits {sorted(state.local_qubit_set())}, "
          f"global {sorted(state.global_qubit_set())}")

    for gate, expectation in [
        (Gate("h", (3,)), "local kernel, no communication"),
        (Gate("cz", (10, 11)), "global CZ -> conditional phase, free"),
        (Gate("t", (9,)), "global T -> per-rank phase, free"),
        (Gate("cnot", (11, 2)), "global control -> rank-conditional X, free"),
        (Gate("x", (8,)), "global X -> rank renumbering, free"),
    ]:
        before = state.stats.alltoall_steps
        state.apply_gate(gate)
        moved = state.stats.alltoall_steps - before
        print(f"  {gate!r:<24} -> {expectation} (all-to-alls: {moved})")

    print("\n=== a dense global gate needs a swap ===")
    before = state.stats.alltoall_steps
    state.apply_gate(Gate("h", (10,)), auto_swap=True)
    print(
        f"  H on global qubit 10: auto_swap performed "
        f"{state.stats.alltoall_steps - before} all-to-all step(s); "
        f"new global set {sorted(state.global_qubit_set())}"
    )

    print("\n=== per-gate execution vs scheduled program ===")
    circuit = generate_supremacy_circuit(n, 12, seed=3)
    reference = Simulator(n).run(circuit).state

    naive = DistributedSimulator(n, l).run(circuit, auto_swap=True)
    schedule = schedule_circuit(circuit, SchedulerConfig(local_qubits=l, seed=1))
    scheduled = DistributedSimulator(n, l).run_schedule(schedule)

    assert naive.state.to_statevector().allclose(reference, atol=1e-9)
    assert scheduled.state.to_statevector().allclose(reference, atol=1e-9)
    print(f"  per-gate: {naive.comm.alltoall_steps} communication steps, "
          f"{naive.comm.bytes_on_network / 1e6:.1f} MB")
    print(f"  scheduled: {scheduled.comm.alltoall_steps} communication steps, "
          f"{scheduled.comm.bytes_on_network / 1e6:.1f} MB "
          f"({schedule.num_clusters} fused clusters, kmax={schedule.kmax})")
    print("  both agree with the single-node reference bit for bit")


if __name__ == "__main__":
    main()
