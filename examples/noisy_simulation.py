"""Noise studies with quantum trajectories.

The paper's introduction motivates classical simulation with "carrying
out studies of [algorithm] behavior under noise".  This example sweeps a
depolarizing error rate on a supremacy circuit and shows the two
signatures hardware teams watch:

* state fidelity decays roughly as (1 - p)^(#noise events),
* the cross-entropy-benchmarking fidelity estimated from *samples*
  tracks the true fidelity — so XEB measured on a device tells you its
  effective error rate, which is precisely the calibration loop the
  45-qubit simulation supports.

Run:  python examples/noisy_simulation.py
"""

import numpy as np

from repro import Simulator, generate_supremacy_circuit
from repro.analysis import linear_xeb_fidelity, shannon_entropy
from repro.noise import NoisySimulator, depolarizing_channel


def main() -> None:
    num_qubits, depth, trajectories = 8, 16, 30
    circuit = generate_supremacy_circuit(num_qubits, depth, seed=4)
    ideal = Simulator(num_qubits).run(circuit).state
    ideal_probs = ideal.probabilities()
    noise_events = sum(gate.num_qubits for gate in circuit)
    print(
        f"{num_qubits}-qubit depth-{depth} circuit, {len(circuit)} gates, "
        f"{noise_events} noise events per trajectory\n"
    )
    print(
        f"{'error rate':>10} {'fidelity':>9} {'(1-p)^events':>13} "
        f"{'entropy':>8} {'XEB':>6}"
    )
    rng = np.random.default_rng(0)
    for p in (0.0, 0.002, 0.01, 0.03):
        result = NoisySimulator(num_qubits, depolarizing_channel(p), seed=1).run(
            circuit, trajectories
        )
        prediction = (1 - p) ** noise_events
        # Sample from the trajectory-averaged distribution and estimate
        # fidelity via XEB, as an experiment would.
        samples = rng.choice(
            len(result.mean_probabilities),
            size=8000,
            p=result.mean_probabilities / result.mean_probabilities.sum(),
        )
        xeb = linear_xeb_fidelity(samples, ideal_probs)
        print(
            f"{p:>10.3f} {result.mean_fidelity_to_ideal:>9.3f} "
            f"{prediction:>13.3f} "
            f"{shannon_entropy(result.mean_probabilities):>8.3f} {xeb:>6.2f}"
        )
    print(
        "\nfidelity tracks the exponential-decay prediction and XEB tracks "
        "fidelity — noise calibration via classical simulation."
    )


if __name__ == "__main__":
    main()
