"""Project a simulation onto the paper's supercomputers (Table 2 story).

Given a circuit size and node count, this example schedules the circuit,
prices it on the calibrated Cori II (KNL + Aries dragonfly) models, and
prints a Table-2-style profile including the speedup over the per-gate
baseline of Boixo et al. [5] — including the record 45-qubit, 8192-node,
0.5 PB configuration.

Run:  python examples/performance_projection.py
"""

import math

from repro import SchedulerConfig, generate_supremacy_circuit, schedule_circuit
from repro.perfmodel import (
    ARIES_DRAGONFLY,
    BaselineModel,
    CORI_KNL_NODE,
    TimelineModel,
)

CONFIGS = [
    # (qubits, nodes) as in Table 2
    (30, 1),
    (36, 64),
    (42, 4096),
    (45, 8192),
]


def main() -> None:
    model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    baseline = BaselineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)

    print(
        f"{'qubits':>6} {'nodes':>6} {'memory':>9} {'swaps':>5} {'time':>9} "
        f"{'comm%':>6} {'PFLOPS':>7} {'speedup':>8}"
    )
    for nq, nodes in CONFIGS:
        l = nq - int(math.log2(nodes))
        circuit = generate_supremacy_circuit(
            nq, 25, seed=0, include_trailing_singles=False
        )
        schedule = schedule_circuit(
            circuit, SchedulerConfig(local_qubits=l, kmax=4, seed=1)
        )
        ours = model.predict(schedule)
        base = baseline.predict(circuit, l)
        memory_tib = (1 << nq) * 16 / 2**40
        memory = f"{memory_tib / 1024:.2f} PB" if memory_tib >= 1024 else f"{memory_tib:.1f} TiB"
        print(
            f"{nq:>6} {nodes:>6} {memory:>9} {schedule.num_swaps:>5} "
            f"{ours.total_seconds:>8.1f}s {100 * ours.comm_fraction:>6.1f} "
            f"{ours.pflops:>7.3f} "
            f"{base.total_seconds / ours.total_seconds:>7.1f}x"
        )

    print(
        "\npaper Table 2: 9.58s / 28.92s / 79.53s / 552.61s; comm 0 / 42.9 / "
        "71.8 / 78.0%; speedups 14.8x / 12.8x / 12.4x; 45q run sustained "
        "0.428 PFLOPS on 0.5 PB of memory."
    )


if __name__ == "__main__":
    main()
