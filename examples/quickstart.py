"""Quickstart: simulate a quantum supremacy circuit end to end.

Generates a 16-qubit (4x4 grid) depth-16 supremacy circuit, schedules it
for a 32-virtual-node run (11 local qubits), executes it on the
distributed simulator, and checks the output against the single-node
reference and the Porter-Thomas entropy.

Run:  python examples/quickstart.py
"""

from repro import (
    DistributedSimulator,
    SchedulerConfig,
    Simulator,
    generate_supremacy_circuit,
    schedule_circuit,
)
from repro.analysis import distributed_entropy, porter_thomas_entropy_nats


def main() -> None:
    num_qubits, depth, local_qubits = 16, 16, 11

    # 1. Generate the circuit (Fig. 1 rules: H layer, 8 CZ patterns,
    #    randomized T / X^1/2 / Y^1/2 gates).
    circuit = generate_supremacy_circuit(num_qubits, depth, seed=2017)
    print(f"circuit: {num_qubits} qubits, depth {depth}, {len(circuit)} gates")

    # 2. Schedule: minimize global-to-local swaps, fuse gates into
    #    k-qubit clusters (Sec. 3.6 of the paper).
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=local_qubits, kmax=4, seed=1)
    )
    print("schedule:", schedule.summary())

    # 3. Execute on the distributed simulator: 2**(16-11) = 32 virtual
    #    nodes, each holding 2**11 amplitudes.
    simulator = DistributedSimulator(num_qubits, local_qubits)
    result = simulator.run_schedule(schedule)
    print(
        f"executed: {result.comm.alltoall_steps} all-to-all steps, "
        f"{result.comm.bytes_on_network / 1e6:.2f} MB on the (virtual) network, "
        f"{result.kernel_cost.total_calls} kernel calls"
    )

    # 4. Verify against the single-node reference simulator.
    reference = Simulator(num_qubits).run(circuit).state
    assert result.state.to_statevector().allclose(reference, atol=1e-9)
    print("distributed result matches the single-node reference exactly")

    # 5. Analyse: supremacy circuits drive the output entropy to the
    #    Porter-Thomas value (the quantity the paper's Edison run computes).
    entropy = distributed_entropy(result.state)
    print(
        f"output entropy {entropy:.4f} nats "
        f"(Porter-Thomas: {porter_thomas_entropy_nats(num_qubits):.4f})"
    )


if __name__ == "__main__":
    main()
