"""Cross-entropy benchmarking of a (simulated) noisy quantum device.

This is the paper's motivating application (Sec. 1): near-term devices
run supremacy circuits, and a classical simulator supplies the ideal
probabilities needed to estimate the device's fidelity via cross-entropy
benchmarking [5].

Here the "device" is simulated as a depolarised sampler: with
probability ``fidelity`` it draws from the ideal output distribution,
otherwise uniformly at random.  XEB must recover the programmed fidelity.

Run:  python examples/supremacy_benchmarking.py
"""

import numpy as np

from repro import Simulator, generate_supremacy_circuit
from repro.analysis import linear_xeb_fidelity, log_xeb_fidelity
from repro.statevector.measure import sample_bitstrings


def noisy_device_samples(
    state, shots: int, fidelity: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample a depolarised device: ideal with probability *fidelity*."""
    ideal = sample_bitstrings(state, shots, seed=rng)
    uniform = rng.integers(0, state.data.shape[0], shots)
    take_ideal = rng.random(shots) < fidelity
    return np.where(take_ideal, ideal, uniform)


def main() -> None:
    num_qubits, depth, shots = 14, 20, 20_000
    rng = np.random.default_rng(7)

    circuit = generate_supremacy_circuit(num_qubits, depth, seed=5)
    print(f"simulating the ideal {num_qubits}-qubit depth-{depth} circuit ...")
    state = Simulator(num_qubits).run(circuit).state
    ideal_probs = state.probabilities()

    print(f"\n{'device fidelity':>15} {'linear XEB':>11} {'log XEB':>9}")
    for fidelity in (1.0, 0.75, 0.5, 0.25, 0.0):
        samples = noisy_device_samples(state, shots, fidelity, rng)
        lin = linear_xeb_fidelity(samples, ideal_probs)
        log = log_xeb_fidelity(samples, ideal_probs)
        print(f"{fidelity:>15.2f} {lin:>11.3f} {log:>9.3f}")
    print(
        "\nXEB recovers the programmed fidelity — the calibration loop the "
        "paper's simulations enable for real hardware."
    )


if __name__ == "__main__":
    main()
