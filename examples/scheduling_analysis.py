"""Scheduling analysis at paper scale (no amplitudes needed).

The scheduler operates on circuit structure alone, so the paper's
42- and 45-qubit communication analysis (Fig. 5, Table 1) runs on a
laptop in seconds.  This example reproduces it for a 42-qubit circuit:
swap counts across local-qubit splits, the per-gate baseline of [5],
cluster statistics for kmax 3/4/5, and the qubit -> bit mapping.

Run:  python examples/scheduling_analysis.py
"""

from repro import (
    SchedulerConfig,
    baseline_global_gates,
    generate_supremacy_circuit,
    schedule_circuit,
)
from repro.scheduling import cluster_bit_mapping, find_stages
from repro.scheduling.mapping import mapping_cost


def main() -> None:
    nq, depth = 42, 25
    circuit = generate_supremacy_circuit(
        nq, depth, seed=0, include_initial_hadamards=False
    )
    print(f"{nq}-qubit depth-{depth} supremacy circuit: {len(circuit)} gates\n")

    print("=== communication steps (Fig. 5 story) ===")
    print(f"{'local qubits':>12} {'swaps (ours)':>13} {'global gates ([5])':>19}")
    for l in (29, 30, 31, 32):
        plan = find_stages(circuit, l, seed=1, restarts=3)
        base = baseline_global_gates(circuit, l, worst_case=False)
        print(f"{l:>12} {plan.num_swaps:>13} {base.global_gates:>19}")
    print(
        "-> one swap costs the same as one global gate; averaged locality "
        "makes a global gate ~2x cheaper, hence the paper's ~12.5x estimate\n"
    )

    print("=== clustering (Table 1 story, 30 local qubits) ===")
    print(f"{'kmax':>4} {'clusters':>9} {'gates/cluster':>14} {'specialized':>12}")
    clusters_k5 = None
    for kmax in (3, 4, 5):
        sched = schedule_circuit(
            circuit, SchedulerConfig(local_qubits=30, kmax=kmax, seed=1)
        )
        print(
            f"{kmax:>4} {sched.num_clusters:>9} {sched.gates_per_cluster():>14.2f} "
            f"{sched.num_specialized_gates:>12}"
        )
        if kmax == 5:
            clusters_k5 = [
                op.qubits for st in sched.stages for op in st.cluster_ops
            ]

    print("\n=== qubit -> bit-location mapping (Sec. 3.6.2) ===")
    threshold = 22  # cache penalty region for 30 local qubits
    mapping = cluster_bit_mapping(clusters_k5, nq, penalty_threshold=threshold)
    identity = {q: q for q in range(nq)}
    print(
        f"clusters touching bit >= {threshold}: "
        f"identity {mapping_cost(clusters_k5, identity, high_order_threshold=threshold)}, "
        f"mapped {mapping_cost(clusters_k5, mapping, high_order_threshold=threshold)}"
    )
    busiest = sorted(mapping, key=mapping.get)[:8]
    print(f"busiest qubits (lowest bit locations): {busiest}")


if __name__ == "__main__":
    main()
