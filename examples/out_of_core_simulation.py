"""SSD-resident simulation (the paper's Sec. 5 outlook, implemented).

The paper observes that two all-to-alls per circuit make it feasible to
keep the state vector on solid-state drives instead of DRAM.  This
example runs a complete scheduled supremacy-circuit simulation with the
amplitudes living in disk shard files, with block exchanges streaming
through bounded memory, and verifies the result against an in-memory
reference.

Run:  python examples/out_of_core_simulation.py
"""

import tempfile
from pathlib import Path

from repro import (
    DiskShards,
    DistributedSimulator,
    SchedulerConfig,
    Simulator,
    generate_supremacy_circuit,
    schedule_circuit,
)
from repro.analysis import distributed_entropy


def main() -> None:
    n, depth, l = 14, 14, 9  # 32 shard files x 512 amplitudes
    circuit = generate_supremacy_circuit(n, depth, seed=11)
    schedule = schedule_circuit(circuit, SchedulerConfig(local_qubits=l, seed=1))
    print(
        f"{n}-qubit depth-{depth} circuit -> {schedule.num_swaps} swaps, "
        f"{schedule.num_clusters} clusters"
    )

    with tempfile.TemporaryDirectory(prefix="repro_ssd_") as tmp:
        storage = DiskShards(1 << (n - l), 1 << l, tmp)
        shard_files = sorted(Path(tmp).glob("shard_*.dat"))
        total_bytes = sum(f.stat().st_size for f in shard_files)
        print(
            f"state vector on disk: {len(shard_files)} shard files, "
            f"{total_bytes / 2**20:.1f} MiB total"
        )

        simulator = DistributedSimulator(n, l, storage=storage)
        result = simulator.run_schedule(schedule)
        print(
            f"executed from disk: {result.comm.alltoall_steps} all-to-all "
            f"passes over the files, entropy {distributed_entropy(result.state):.4f}"
        )

        reference = Simulator(n).run(circuit).state
        assert result.state.to_statevector().allclose(reference, atol=1e-9)
        print("disk-resident result matches the in-memory reference exactly")

    print(
        "\nAt paper scale: a 49-qubit state (8 PB) with 2 swaps would touch "
        "each byte on SSD only a handful of times — the Sec. 5 argument."
    )


if __name__ == "__main__":
    main()
