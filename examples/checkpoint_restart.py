"""Checkpoint / restart of a long distributed run.

At the paper's scale (0.5 PB for ~10 minutes across 8,192 nodes),
production simulations checkpoint.  This example runs a scheduled
simulation that is killed mid-flight by an injected failure, then
resumes from the last checkpoint and finishes — producing exactly the
same amplitudes as an uninterrupted run.

Run:  python examples/checkpoint_restart.py
"""

import tempfile

from repro import (
    SchedulerConfig,
    Simulator,
    generate_supremacy_circuit,
    schedule_circuit,
)
from repro.distributed.checkpoint import CheckpointManager
from repro.runtime import CheckpointLayer, ExecutionEngine


def main() -> None:
    n, depth, l = 14, 14, 10
    circuit = generate_supremacy_circuit(n, depth, seed=21)
    schedule = schedule_circuit(circuit, SchedulerConfig(local_qubits=l, seed=1))
    ops = len(list(schedule.operations()))
    print(
        f"{n}-qubit depth-{depth} schedule: {ops} operations, "
        f"{schedule.num_swaps} swaps"
    )

    reference = Simulator(n).run(circuit).state

    with tempfile.TemporaryDirectory(prefix="repro_ckpt_") as tmp:
        manager = CheckpointManager(tmp)
        layer = CheckpointLayer(manager, every=4, fail_after=9)
        engine = ExecutionEngine(schedule, use_plan=False, layers=[layer])  # lint: allow-engine-direct
        try:
            engine.run()
        except RuntimeError as exc:
            print(f"simulated node failure: {exc}")

        state, next_op = manager.load()
        print(
            f"checkpoint holds op index {next_op}/{ops} "
            f"with layout {sorted(state.global_qubit_set())} global"
        )

        final = manager.resume(schedule, every=4)
        matches = final.to_statevector().allclose(reference, atol=1e-9)
        print(f"resumed to completion; matches uninterrupted run: {matches}")
        assert matches


if __name__ == "__main__":
    main()
