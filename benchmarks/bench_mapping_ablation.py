"""Sec. 3.6.2 ablation: qubit -> bit-location mapping vs identity.

The paper's heuristic "allowed for a 2x decrease in time-to-solution" by
minimising the number of clusters that touch high-order bit locations
(where the cache-associativity penalty bites).  This bench compares the
penalised-cluster count and the cache-model-predicted kernel time under
the identity mapping vs the heuristic mapping.
"""

from __future__ import annotations

from repro.perfmodel import CORI_KNL_NODE
from repro.perfmodel.cache_model import CacheModel
from repro.scheduling import cluster_bit_mapping
from repro.scheduling.mapping import mapping_cost
from repro.util.flops import COMPLEX128_BYTES, operational_intensity


def _modeled_kernel_time(clusters, mapping, local_qubits: int) -> float:
    """Sum of per-cluster sweep times under the cache penalty model."""
    machine = CORI_KNL_NODE
    cache = CacheModel(machine)
    threshold = local_qubits - 8  # top bits: large power-of-two strides
    shard_bytes = (1 << local_qubits) * COMPLEX128_BYTES
    total = 0.0
    for qubits in clusters:
        k = len(qubits)
        high = any(mapping[q] >= threshold for q in qubits)
        bw = machine.dram_bw_gbs * cache.bandwidth_factor(k, high_order=high)
        gflops = min(
            machine.peak_gflops * machine.compute_efficiency,
            operational_intensity(k) * bw,
        )
        flops = (8 * (1 << k) - 2) * (1 << local_qubits)
        total += flops / (gflops * 1e9)
    return total


def bench_mapping_ablation(benchmark, report_writer, schedule_cache):
    _, sched = schedule_cache(30, 30, kmax=5)
    clusters = [
        op.qubits for stage in sched.stages for op in stage.cluster_ops
    ]
    n = 30
    threshold = 22
    identity = {q: q for q in range(n)}
    mapped = cluster_bit_mapping(clusters, n, penalty_threshold=threshold)
    cost_id = mapping_cost(clusters, identity, high_order_threshold=threshold)
    cost_map = mapping_cost(clusters, mapped, high_order_threshold=threshold)
    t_id = _modeled_kernel_time(clusters, identity, 30)
    t_map = _modeled_kernel_time(clusters, mapped, 30)

    rows = [
        f"30-qubit depth-25 schedule, {len(clusters)} clusters, kmax=5",
        f"clusters touching bit >= {threshold}: identity={cost_id}  mapped={cost_map}",
        f"modeled kernel time: identity={t_id:.2f}s  mapped={t_map:.2f}s  "
        f"speedup={t_id / t_map:.2f}x",
        "",
        "paper Sec. 3.6.2: 'the following heuristic allowed for a 2x decrease "
        "in time-to-solution'",
    ]
    report_writer("mapping_ablation", rows)

    assert cost_map <= cost_id
    assert t_map <= t_id

    benchmark(cluster_bit_mapping, clusters, n)
