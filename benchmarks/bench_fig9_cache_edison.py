"""Fig. 9: Edison performance drop for high-order k-qubit kernels.

Same experiment as Fig. 6 on the two-socket Ivy Bridge node: 8-way
L1/L2 caches mean kernels with 2**k > 8 gathered lines thrash when the
access stride is a large power of two.  The paper's Sec. 4.2.1 findings:
k <= 3 shows only a negligible drop; the k = 5 drop is much greater than
the k = 4 drop.
"""

from __future__ import annotations

from repro.perfmodel import EDISON_NODE, kernel_performance


def bench_fig9_cache_edison(benchmark, report_writer):
    rows = [f"{'k':>2} {'low-order':>10} {'high-order':>11} {'drop':>7}"]
    low, high = [], []
    for k in range(1, 6):
        lo = kernel_performance(EDISON_NODE, k)
        hi = kernel_performance(EDISON_NODE, k, high_order=True)
        low.append(lo)
        high.append(hi)
        rows.append(f"{k:>2} {lo:>10.1f} {hi:>11.1f} {1 - hi / lo:>6.0%}")
    rows.append("")
    rows.append(
        "paper Fig. 9 / Sec. 4.2.1: negligible drop for k<=3; k=5 drop much "
        "greater than k=4 (8-way caches)"
    )
    report_writer("fig9_cache_edison", rows)

    # Exact paper shape.
    for k in (1, 2, 3):
        assert high[k - 1] == low[k - 1], k
    drop4 = 1 - high[3] / low[3]
    drop5 = 1 - high[4] / low[4]
    assert drop4 > 0.2
    assert drop5 > drop4 + 0.1  # "much greater" for the 5-qubit kernel
    # Fig. 9's y-range: Edison node peaks in the low hundreds of GFLOPS.
    assert 150 < max(low) < 400

    benchmark(kernel_performance, EDISON_NODE, 5, high_order=True)
