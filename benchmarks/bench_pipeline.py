"""Pipelined compute/I-O overlap vs the serial out-of-core path.

The paper's outlook (Sec. 5) moves the state vector to SSDs; qHiPSTER's
double-buffering (PAPERS.md) hides the resulting I/O behind compute.
This bench replays one schedule on :class:`repro.distributed.DiskShards`
twice:

* **serial** — the plain engine: every shard write is followed by a
  synchronous whole-mapping msync before the next op may start;
* **pipelined** — the same engine with a :class:`repro.runtime.
  PipelineLayer`: shard syncs become background fd-level fsyncs that
  overlap the next op's kernel, block exchanges double-buffer
  (read-ahead of pair *i+1* while pair *i* writes), and the next ops'
  gather/diagonal tables are warmed off-thread.

Both runs must produce bit-identical final states and identical
timing-free trace signatures — the overlap is *only* allowed to move
work in time, never to change it.  The ISSUE target is >= 1.3x; the
hard assert carries the usual noise headroom.
"""

from __future__ import annotations

import time

from repro.distributed import DiskShards
from repro.distributed.state import DistributedState
from repro.runtime import ExecutionEngine, PipelineLayer, TracingLayer
from repro.service.jobs import state_fingerprint
from repro.telemetry import Telemetry

PIPELINE_DEPTH = 2


def bench_pipeline(
    benchmark, report_writer, bench_record, schedule_cache, tmp_path_factory
):
    n, l, depth = 17, 13, 16
    _, sched = schedule_cache(n, l, depth=depth, seed=0)
    ops = len(list(sched.operations()))
    shard_bytes = (1 << l) * 16
    base = tmp_path_factory.mktemp("bench_pipeline")

    def run(pipelined: bool, directory):
        storage = DiskShards(1 << (n - l), 1 << l, directory)
        state = DistributedState(
            n,
            l,
            storage=storage,
            init=getattr(sched, "initial_state", "zero"),
            initial_global_qubits=sched.initial_global_qubits or None,
        )
        telemetry = Telemetry.enabled()
        layers = [TracingLayer(telemetry)]
        pipe = None
        if pipelined:
            pipe = PipelineLayer(depth=PIPELINE_DEPTH)
            layers.append(pipe)
        engine = ExecutionEngine(  # lint: allow-engine-direct
            sched, layers=layers
        )
        start = time.perf_counter()
        result = engine.run(state=state)
        wall = time.perf_counter() - start
        fingerprint = state_fingerprint(result.state.to_statevector())
        signature = result.trace.signature()
        io_stats = dict(storage.io_stats)
        storage.close()
        return wall, fingerprint, signature, pipe, io_stats

    variants = {
        "serial": lambda d: run(False, d),
        "pipelined": lambda d: run(True, d),
    }
    dirs = {name: base / name for name in variants}
    for d in dirs.values():
        d.mkdir()
    # Warm pass: page cache, gather tables, numpy code paths — first
    # touch is not the bench.  Parity is asserted on the warm pass too.
    warm = {name: fn(dirs[name]) for name, fn in variants.items()}
    assert warm["serial"][1] == warm["pipelined"][1], (
        "pipelined run changed the final state"
    )
    assert warm["serial"][2] == warm["pipelined"][2], (
        "pipelined run changed the trace signature"
    )
    # Interleave the timed rounds (best of 3, round-robin) so transient
    # system noise lands on both variants equally.
    seconds = {name: float("inf") for name in variants}
    last = {}
    for _ in range(3):
        for name, fn in variants.items():
            out = fn(dirs[name])
            seconds[name] = min(seconds[name], out[0])
            last[name] = out
    assert last["serial"][1] == last["pipelined"][1]
    assert last["serial"][2] == last["pipelined"][2]

    speedup = seconds["serial"] / seconds["pipelined"]
    overlap_fraction = max(0.0, 1.0 - seconds["pipelined"] / seconds["serial"])
    pipe = last["pipelined"][3]
    pipe_stats = pipe.stats()
    io_serial = last["serial"][4]
    io_piped = last["pipelined"][4]

    rows = [
        f"{n}-qubit depth-{depth} schedule on DiskShards "
        f"({1 << (n - l)} shards x {shard_bytes >> 10} KiB, {ops} ops, "
        f"best of 3):",
        "",
        f"{'variant':>10}  {'wall s':>8}  {'sync msyncs':>11}  "
        f"{'async fsyncs':>12}",
        f"{'serial':>10}  {seconds['serial']:>8.3f}  "
        f"{io_serial['sync_flushes']:>11}  {io_serial['async_syncs']:>12}",
        f"{'pipelined':>10}  {seconds['pipelined']:>8.3f}  "
        f"{io_piped['sync_flushes']:>11}  {io_piped['async_syncs']:>12}",
        "",
        f"speedup          : {speedup:.2f}x (target >= 1.3x)",
        f"overlap fraction : {overlap_fraction:.2f} "
        "(share of serial wall time hidden behind compute)",
        f"prefetch         : {pipe_stats['issued']} issued, "
        f"{pipe_stats['hits']} hits, {pipe_stats['stalls']} stalls "
        f"({pipe_stats['stall_seconds']:.3f}s stalled)",
        f"exchange pairs read ahead: "
        f"{io_piped['exchange_prefetched_pairs']}",
        "",
        "identical fingerprints and trace signatures: the pipeline only",
        "moves msync/table work in time, it never reorders visible state",
    ]
    report_writer("pipeline", rows)
    bench_record(
        "pipeline",
        seconds=seconds["pipelined"],
        params={
            "qubits": n,
            "local_qubits": l,
            "depth": depth,
            "ops": ops,
            "pipeline_depth": PIPELINE_DEPTH,
        },
        bytes_moved=(1 << (n - l)) * shard_bytes,
        metrics={
            "speedup": speedup,
            "overlap_fraction": overlap_fraction,
            "serial_seconds": seconds["serial"],
            "prefetch.issued": pipe_stats["issued"],
            "prefetch.hits": pipe_stats["hits"],
            "prefetch.stalls": pipe_stats["stalls"],
            "stall_seconds": pipe_stats["stall_seconds"],
        },
    )

    assert speedup >= 1.3, (
        f"pipelined speedup {speedup:.2f}x < 1.3x over serial DiskShards"
    )

    benchmark.pedantic(
        lambda: run(True, dirs["pipelined"]), rounds=1, iterations=1
    )
