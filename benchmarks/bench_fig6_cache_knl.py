"""Fig. 6: KNL performance drop for high-order k-qubit kernels.

Regenerates the modeled low- vs high-order GFLOPS per kernel size
(set-associativity model: 16-way L2 shared between 2 cores = 8 effective
ways) and measures the same stride effect with this machine's numpy
kernels: gates on the highest qubit indices gather amplitudes at
power-of-two strides, which is measurably slower than low-order access.
"""

from __future__ import annotations

import time

from repro.gates import random_unitary
from repro.kernels import apply_gate_indexed
from repro.perfmodel import CORI_KNL_NODE, kernel_performance
from repro.util.flops import gate_flops
from repro.util.rng import random_statevector

_N = 22  # 2**22 amplitudes = 64 MiB: far beyond LLC, stride effects visible


def _measure(state, k, high_order, reps=3) -> float:
    qubits = tuple(range(_N - k, _N)) if high_order else tuple(range(k))
    u = random_unitary(k, 0)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        apply_gate_indexed(state, u, qubits, chunk_size=1 << 14)
        best = min(best, time.perf_counter() - start)
    return gate_flops(_N, k) / best / 1e9


def bench_fig6_cache_knl(benchmark, report_writer):
    rows = [
        f"{'k':>2} {'KNL low (model)':>16} {'KNL high (model)':>17} "
        f"{'host low':>10} {'host high':>10} {'host ratio':>10}"
    ]
    state = random_statevector(_N, 0).copy()
    model_low, model_high, host_ratio = [], [], []
    for k in range(1, 6):
        lo = kernel_performance(CORI_KNL_NODE, k)
        hi = kernel_performance(CORI_KNL_NODE, k, high_order=True)
        m_lo = _measure(state, k, high_order=False)
        m_hi = _measure(state, k, high_order=True)
        model_low.append(lo)
        model_high.append(hi)
        host_ratio.append(m_hi / m_lo)
        rows.append(
            f"{k:>2} {lo:>16.0f} {hi:>17.0f} {m_lo:>10.2f} {m_hi:>10.2f} "
            f"{m_hi / m_lo:>10.2f}"
        )
    rows.append("")
    rows.append(
        "paper: no drop for k<=3 (2**k <= 8 ways); drop at k=4, larger at k=5"
    )
    rows.append(
        "host note: numpy's gather kernel reads contiguous panels for "
        "HIGH-order qubits (and strided ones for low-order), so the host "
        "ratio runs in the opposite direction to the paper's in-place C "
        "kernels — what both share is strong, growing position dependence."
    )
    report_writer("fig6_cache_knl", rows)

    # Model shape: exactly the paper's associativity story.
    for k in (1, 2, 3):
        assert model_high[k - 1] == model_low[k - 1]
    assert model_high[3] < model_low[3]
    assert model_high[4] < model_high[3]
    # Host shape: qubit position changes throughput substantially at
    # large k (direction differs from the C kernels; see note above).
    assert abs(host_ratio[4] - 1.0) > 0.15
    assert abs(host_ratio[4] - 1.0) >= abs(host_ratio[0] - 1.0) - 0.05

    u = random_unitary(4, 0)
    benchmark(
        apply_gate_indexed, state, u, tuple(range(_N - 4, _N)), chunk_size=1 << 14
    )
