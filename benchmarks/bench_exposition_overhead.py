"""Exposition overhead: scrape latency and serving-path cost.

Two questions about the live observability plane:

1. How long does one ``/metrics`` scrape take against a loaded registry
   (many tenants, thousands of histogram observations) — both the pure
   render and the full HTTP round trip?
2. What does running the exposition server *and actively scraping it*
   (every ~250 ms — 20-60x harder than a real scrape cadence) cost the
   serving path itself?  The acceptance bound: the same multi-tenant
   stress run with the plane enabled must stay within 1.05x of the
   disabled run.  The gate compares process CPU seconds — every cycle
   the plane burns counts, while single-core scheduler noise (this can
   run on a 1-CPU host where six threads share one core) does not;
   wall time is reported alongside for context.
"""

from __future__ import annotations

import asyncio
import statistics
import threading
import time

from repro.circuit import generate_supremacy_circuit
from repro.service import JobSpec, ServiceConfig, SimulationService
from repro.telemetry import MetricsRegistry
from repro.telemetry.exposition import prometheus_exposition
from repro.telemetry.live import ExpositionServer, http_get


def _loaded_registry(tenants: int = 40, observations: int = 500):
    registry = MetricsRegistry()
    for t in range(tenants):
        tenant = f"tenant-{t:02d}"
        hist = registry.histogram("service.exec.seconds", tenant=tenant)
        for i in range(observations):
            hist.observe(0.001 * (i + 1))
        registry.counter(
            "service.jobs.completed", tenant=tenant
        ).inc(observations)
        registry.gauge("service.queue.depth", tenant=tenant).set(t)
    return registry


def _scrape_latencies(registry, rounds: int = 20) -> list[float]:
    async def scenario():
        loop = asyncio.get_running_loop()
        server = ExpositionServer(registry)
        port = await server.start(port=0)
        try:
            latencies = []
            for _ in range(rounds):
                start = time.perf_counter()
                status, _ = await loop.run_in_executor(
                    None, http_get, port, "/metrics"
                )
                assert status == 200
                latencies.append(time.perf_counter() - start)
            return latencies
        finally:
            await server.stop()

    return asyncio.run(scenario())


def _stress_specs() -> list[JobSpec]:
    """Serving-scale jobs: states big enough that kernels, not Python
    bookkeeping, dominate — the regime the 1.05x budget is about."""
    specs = []
    for seed, (tenant, qubits, depth) in enumerate(
        [("alpha", 14, 10), ("beta", 15, 10), ("gamma", 16, 8)] * 4
    ):
        circuit = generate_supremacy_circuit(qubits, depth, seed=seed)
        specs.append(
            JobSpec(
                tenant=tenant,
                circuit=circuit,
                local_qubits=qubits - 2,
                shots=16,
                seed=seed,
                use_result_cache=False,
            )
        )
    return specs


def _run_stress(specs, *, scrape: bool) -> tuple[float, float]:
    """(wall, cpu) seconds for the stress run, optionally under scraping."""

    async def scenario():
        service = SimulationService(ServiceConfig(max_workers=4))
        await service.start()
        exposition = scraper = None
        stop = threading.Event()
        if scrape:
            exposition = service.exposition_server()
            port = await exposition.start(port=0)

            def scrape_loop():
                while not stop.is_set():
                    try:
                        http_get(port, "/metrics")
                    except OSError:
                        return
                    stop.wait(0.25)

            scraper = threading.Thread(
                target=scrape_loop, name="bench-scraper"
            )
            scraper.start()
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            jobs = [await service.submit(spec) for spec in specs]
            await asyncio.gather(*(service.wait(job) for job in jobs))
            elapsed = time.perf_counter() - start
            cpu = time.process_time() - cpu_start
        finally:
            stop.set()
            if exposition is not None:
                await exposition.stop()
            await service.shutdown()
        if scraper is not None:
            scraper.join()
        return elapsed, cpu

    return asyncio.run(scenario())


def bench_exposition_overhead(benchmark, report_writer, bench_record):
    registry = _loaded_registry()
    page = prometheus_exposition(registry)

    render_seconds = min(
        _timed(prometheus_exposition, registry) for _ in range(5)
    )
    http_latencies = _scrape_latencies(registry)
    http_median = statistics.median(http_latencies)

    specs = _stress_specs()
    _run_stress(specs, scrape=False)  # warm plan + gather caches
    # Interleave the modes so drift on a shared host hits both equally.
    baseline, scraped = [], []
    for _ in range(3):
        baseline.append(_run_stress(specs, scrape=False))
        scraped.append(_run_stress(specs, scrape=True))
    base_wall = min(wall for wall, _ in baseline)
    base_cpu = min(cpu for _, cpu in baseline)
    scraped_wall = min(wall for wall, _ in scraped)
    scraped_cpu = min(cpu for _, cpu in scraped)
    ratio = scraped_cpu / base_cpu

    rows = [
        f"loaded registry: {len(registry)} series, "
        f"{len(page)} bytes/page:",
        "",
        f"  render-only scrape      {render_seconds * 1e3:8.3f} ms",
        f"  HTTP round-trip scrape  {http_median * 1e3:8.3f} ms (median of "
        f"{len(http_latencies)})",
        "",
        f"{len(specs)}-job / 4-worker stress run, scraped every ~250 ms "
        "vs unscraped",
        "(best of 3, interleaved; the 1.05x gate is on CPU seconds —",
        "wall time on a shared single-core host is scheduler noise):",
        "",
        f"  unscraped  {base_wall:8.3f} s wall  {base_cpu:8.3f} s cpu",
        f"  scraped    {scraped_wall:8.3f} s wall  {scraped_cpu:8.3f} s cpu"
        f"  ({ratio:.3f}x cpu)",
        "",
        "pull-model gauges refresh only at scrape time and rendering",
        "runs on the loop while engine work sits on executor threads,",
        "so an active scraper must stay inside the 1.05x acceptance band",
    ]
    report_writer("exposition_overhead", rows)
    bench_record(
        "exposition_overhead",
        seconds=http_median,
        params={
            "series": len(registry),
            "page_bytes": len(page),
            "jobs": len(specs),
            "scrape_interval_seconds": 0.25,
        },
        metrics={
            "render.seconds": render_seconds,
            "scrape.http.median_seconds": http_median,
            "stress.unscraped.wall_seconds": base_wall,
            "stress.unscraped.cpu_seconds": base_cpu,
            "stress.scraped.wall_seconds": scraped_wall,
            "stress.scraped.cpu_seconds": scraped_cpu,
            "stress.slowdown": ratio,
        },
    )

    assert ratio <= 1.05, (
        f"scraping cost the serving path {ratio:.3f}x CPU (> 1.05x budget)"
    )

    benchmark.pedantic(
        lambda: prometheus_exposition(registry), rounds=3, iterations=1
    )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start
