"""Table 2: all Cori II runs — time, communication fraction, speedup.

Regenerates the four rows (30/36/42/45 qubits on 1/64/4096/8192 nodes)
from real schedules priced by the calibrated KNL + Aries models, plus
the Sec. 4.1.2 sustained-PFLOPS figure for the 45-qubit record run.
"""

from __future__ import annotations

import math

from repro.perfmodel import (
    ARIES_DRAGONFLY,
    BaselineModel,
    CORI_KNL_NODE,
    TimelineModel,
)

PAPER_ROWS = {
    # qubits: (grid, nodes, seconds, comm %, speedup over [5])
    30: ("6x5", 1, 9.58, 0.0, 14.8),
    36: ("6x6", 64, 28.92, 42.9, 12.8),
    42: ("7x6", 4096, 79.53, 71.8, 12.4),
    45: ("9x5", 8192, 552.61, 78.0, None),
}


def bench_table2_cori(benchmark, report_writer, bench_record, schedule_cache):
    model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    baseline = BaselineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    rows = [
        f"{'qubits':>6} {'nodes':>6} {'T[s]':>8} {'paper':>8} "
        f"{'comm%':>7} {'paper':>7} {'speedup':>8} {'paper':>6} {'PFLOPS':>7}"
    ]
    profiles = {}
    for nq, (grid, nodes, t_paper, comm_paper, speedup_paper) in PAPER_ROWS.items():
        l = nq - int(math.log2(nodes))
        circuit, sched = schedule_cache(nq, l)
        ours = model.predict(sched)
        base = baseline.predict(circuit, l)
        speedup = base.total_seconds / ours.total_seconds
        profiles[nq] = (ours, speedup)
        rows.append(
            f"{nq:>6} {nodes:>6} {ours.total_seconds:>8.2f} {t_paper:>8.2f} "
            f"{100 * ours.comm_fraction:>7.1f} {comm_paper:>7.1f} "
            f"{speedup:>8.1f} {str(speedup_paper):>6} {ours.pflops:>7.3f}"
        )
    rows.append("")
    rows.append(
        "45-qubit record run: paper 0.428 PFLOPS sustained, 78% comm; "
        f"model {profiles[45][0].pflops:.3f} PFLOPS, "
        f"{100 * profiles[45][0].comm_fraction:.1f}% comm"
    )
    report_writer("table2_cori", rows)
    bench_record(
        "table2_cori",
        seconds=profiles[45][0].total_seconds,
        params={"qubits": 45, "nodes": 8192, "paper_seconds": 552.61},
        metrics={
            f"comm_fraction.{nq}": profiles[nq][0].comm_fraction
            for nq in PAPER_ROWS
        },
    )

    # Shape assertions matching the paper's claims.
    assert profiles[30][0].comm_fraction == 0.0
    assert profiles[36][0].comm_fraction < profiles[42][0].comm_fraction
    assert profiles[42][0].comm_fraction < profiles[45][0].comm_fraction
    for nq in (30, 36, 42):
        assert profiles[nq][1] > 10.0, f"{nq}q speedup {profiles[nq][1]}"
    assert abs(profiles[45][0].total_seconds - 552.61) / 552.61 < 0.35

    # Benchmark: pricing a schedule is the harness's hot path.
    _, sched45 = schedule_cache(45, 32)
    benchmark(model.predict, sched45)
