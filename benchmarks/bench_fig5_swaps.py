"""Fig. 5: communication steps vs circuit depth and vs qubit count.

(a) 42-qubit circuits, depths 10-50, local qubits 29-32: global-to-local
    swap counts (top panel) and [5]-style global-gate counts (bottom).
(b) depth-25 circuits for 30/36/42/45/49 qubits.

Shape targets: swap counts stay in the single digits and are mostly
independent of the local qubit count, while the per-gate baseline's
communication grows linearly with depth — the order-of-magnitude gap the
paper's Sec. 4.1.2 turns into its 12.5x estimate.
"""

from __future__ import annotations

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import baseline_global_gates, find_stages

DEPTHS = (10, 15, 20, 25, 30, 40, 50)
LOCALS = (29, 30, 31, 32)


def bench_fig5a_depth_sweep(benchmark, report_writer):
    rows = [
        f"{'depth':>5} | " + " ".join(f"swaps(l={l})" for l in LOCALS)
        + " | global gates (worst/median, l=29)"
    ]
    swaps_by_depth = {}
    for depth in DEPTHS:
        circ = generate_supremacy_circuit(
            42, depth, seed=0, include_initial_hadamards=False
        )
        swaps = [
            find_stages(circ, l, seed=1, restarts=3).num_swaps for l in LOCALS
        ]
        worst = baseline_global_gates(circ, 29, worst_case=True).global_gates
        median = baseline_global_gates(circ, 29, worst_case=False).global_gates
        swaps_by_depth[depth] = swaps
        rows.append(
            f"{depth:>5} | " + " ".join(f"{s:>10}" for s in swaps)
            + f" | {worst:>5} / {median}"
        )
    report_writer("fig5a_depth_sweep", rows)

    for depth, swaps in swaps_by_depth.items():
        # "mostly independent of the number of local qubits"
        assert max(swaps) - min(swaps) <= 1, (depth, swaps)
        # single-digit swaps even at depth 50 (paper: 1-3)
        assert max(swaps) <= 5, (depth, swaps)
    assert swaps_by_depth[50][0] >= swaps_by_depth[10][0]

    circ25 = generate_supremacy_circuit(
        42, 25, seed=0, include_initial_hadamards=False
    )
    benchmark(find_stages, circ25, 30, seed=1, restarts=3)


def bench_fig5b_qubit_sweep(benchmark, report_writer):
    rows = [
        f"{'qubits':>6} | " + " ".join(f"swaps(l={l})" for l in LOCALS)
        + " | global gates (worst/median, l=29)"
    ]
    results = {}
    for nq in (30, 36, 42, 45, 49):
        circ = generate_supremacy_circuit(
            nq, 25, seed=0, include_initial_hadamards=False
        )
        swaps = [
            find_stages(circ, l, seed=1, restarts=4).num_swaps
            for l in LOCALS
        ]
        worst = baseline_global_gates(circ, 29, worst_case=True).global_gates
        median = baseline_global_gates(circ, 29, worst_case=False).global_gates
        results[nq] = (swaps, worst, median)
        rows.append(
            f"{nq:>6} | " + " ".join(f"{s:>10}" for s in swaps)
            + f" | {worst:>5} / {median}"
        )
    rows.append("")
    rows.append("paper: 42q and 45q depth-25 circuits need 2 swaps; 49q needs 2")
    report_writer("fig5b_qubit_sweep", rows)

    for nq in (42, 45, 49):
        swaps, worst, median = results[nq]
        assert max(swaps) <= 3 and min(swaps) >= 1, (nq, swaps)
        # the per-gate baseline needs an order of magnitude more steps
        assert median > 8 * min(swaps), (nq, median, swaps)
    # 30 qubits with >=30 local qubits: no communication at all.
    assert results[30][0][LOCALS.index(30)] == 0

    circ36 = generate_supremacy_circuit(
        36, 25, seed=0, include_initial_hadamards=False
    )
    benchmark(baseline_global_gates, circ36, 30)
