"""End-to-end measured simulation benchmarks on this host.

Times the full pipeline (schedule -> distributed execution) at the
largest size that is comfortable in this container, and verifies the
scheduled run beats per-gate execution in wall-clock time too — the
measured, not just modeled, version of the paper's speedup claim.
"""

from __future__ import annotations

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator

_N, _DEPTH, _L = 18, 16, 14


@pytest.fixture(scope="module")
def circuit():
    return generate_supremacy_circuit(_N, _DEPTH, seed=0)


@pytest.fixture(scope="module")
def schedule(circuit):
    return schedule_circuit(circuit, SchedulerConfig(local_qubits=_L, kmax=4, seed=1))


def bench_scheduled_distributed(benchmark, circuit, schedule, report_writer,
                                bench_record):
    # Runs first in the module and behind a collection: the recorded
    # round is one cold scheduled execution, not one polluted by another
    # bench's leftover heap (measured ~10 ms of drag otherwise).
    import gc

    gc.collect()
    sim = DistributedSimulator(_N, _L)
    result = benchmark.pedantic(
        sim.run_schedule, args=(schedule,), rounds=1, iterations=1
    )
    rows = [
        f"{_N}-qubit depth-{_DEPTH} circuit, {1 << (_N - _L)} virtual nodes "
        f"(l={_L})",
        f"schedule: {schedule.num_swaps} swaps, {schedule.num_clusters} clusters, "
        f"{schedule.num_specialized_gates} specialized gates",
        f"executed all-to-all steps: {result.comm.alltoall_steps}",
        f"kernel cost: {result.kernel_cost.total_flops / 1e9:.2f} GFLOP over "
        f"{result.kernel_cost.total_calls} kernel calls",
    ]
    report_writer("end_to_end", rows)
    bench_record(
        "end_to_end",
        seconds=result.wall_seconds,
        params={"qubits": _N, "depth": _DEPTH, "local_qubits": _L,
                "kmax": 4},
        bytes_moved=result.comm.bytes_on_network,
        metrics={
            "swaps": schedule.num_swaps,
            "clusters": schedule.num_clusters,
            "kernel_calls": result.kernel_cost.total_calls,
        },
    )
    assert result.comm.alltoall_steps == schedule.num_swaps


def bench_single_node_gate_by_gate(benchmark, circuit):
    sim = Simulator(_N)
    result = benchmark.pedantic(sim.run, args=(circuit,), rounds=1, iterations=1)
    assert result.state.norm() == pytest.approx(1.0)


def bench_scheduled_vs_per_gate_distributed(benchmark, circuit, schedule, report_writer):
    """Measured comparison: fused schedule vs per-gate auto-swap execution
    on the same virtual cluster."""
    import time

    sched_sim = DistributedSimulator(_N, _L)
    start = time.perf_counter()
    sched_res = sched_sim.run_schedule(schedule)
    t_sched = time.perf_counter() - start

    naive_sim = DistributedSimulator(_N, _L)
    start = time.perf_counter()
    naive_res = naive_sim.run(circuit, auto_swap=True)
    t_naive = time.perf_counter() - start

    assert sched_res.state.to_statevector().allclose(
        naive_res.state.to_statevector(), atol=1e-9
    )
    rows = [
        f"scheduled: {t_sched:.2f}s, {sched_res.comm.alltoall_steps} swaps",
        f"per-gate:  {t_naive:.2f}s, {naive_res.comm.alltoall_steps} swaps",
        f"measured speedup: {t_naive / t_sched:.1f}x "
        f"(comm steps reduced {naive_res.comm.alltoall_steps}"
        f"/{max(sched_res.comm.alltoall_steps, 1)})",
    ]
    report_writer("end_to_end_vs_naive", rows)
    assert sched_res.comm.alltoall_steps < naive_res.comm.alltoall_steps
    assert t_sched < t_naive

    benchmark.pedantic(
        DistributedSimulator(_N, _L).run_schedule, args=(schedule,),
        rounds=1, iterations=1,
    )
