"""Fig. 10: strong scaling of k-qubit kernels on an Edison node (1-24 cores).

Regenerates the modeled speedup curves.  Paper findings encoded as
assertions: kernels up to k = 4 are memory-bandwidth limited, the
5-qubit kernel scales best to the full node, and the 4-qubit kernel
scales nearly perfectly to the 12 cores of one socket — the observation
behind running 2 MPI ranks per Edison node with k = 4 kernels.
"""

from __future__ import annotations

from repro.perfmodel import EDISON_NODE, EDISON_SOCKET, strong_scaling_speedup

CORES = (1, 2, 4, 8, 12, 16, 20, 24)


def bench_fig10_scaling_edison(benchmark, report_writer):
    rows = [f"{'cores':>5} | " + " ".join(f"{f'k={k}':>7}" for k in range(1, 6))]
    table = {}
    for cores in CORES:
        speedups = [
            strong_scaling_speedup(EDISON_NODE, k, cores) for k in range(1, 6)
        ]
        table[cores] = speedups
        rows.append(f"{cores:>5} | " + " ".join(f"{s:>7.1f}" for s in speedups))
    rows.append("")
    socket12 = [strong_scaling_speedup(EDISON_SOCKET, k, 12) for k in range(1, 6)]
    rows.append(
        "single socket @12 cores: "
        + " ".join(f"k={k}:{s:.1f}" for k, s in enumerate(socket12, 1))
    )
    rows.append("paper Fig. 10: 5q scales best; 4q nearly perfect on one socket")
    report_writer("fig10_scaling_edison", rows)

    at24 = table[24]
    assert at24[4] == max(at24)
    assert at24[0] == min(at24)
    # "the 4-qubit gate kernel scales nearly perfectly to all 12 cores of
    # a single socket"
    assert socket12[3] > 0.8 * 12
    # the 1-qubit kernel saturates well below ideal on the full node
    assert at24[0] < 0.5 * 24

    benchmark(strong_scaling_speedup, EDISON_NODE, 4, 24)
