"""Output-statistics validation: Porter-Thomas, XEB, heavy outputs.

Not a table in the paper itself, but the statistical foundation its
purpose rests on (calibration/benchmarking via [5]): a correct simulator
must produce Porter-Thomas statistics for deep supremacy circuits, with
the canonical constants:

* entropy ``n ln2 - 1 + gamma`` nats,
* heavy-output mass ``(1 + ln2)/2 ~ 0.8466``,
* linear/log XEB of 1 for ideal samples, 0 for uniform samples.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    linear_xeb_fidelity,
    log_xeb_fidelity,
    porter_thomas_entropy_nats,
    porter_thomas_kl_divergence,
    shannon_entropy,
)
from repro.analysis.heavy_output import (
    PORTER_THOMAS_HOG_SCORE,
    heavy_output_probability,
    heavy_output_score,
)
from repro.circuit import generate_supremacy_circuit
from repro.statevector import Simulator
from repro.statevector.measure import sample_bitstrings


def bench_output_statistics(benchmark, report_writer):
    n, depth, shots = 13, 22, 10_000
    circ = generate_supremacy_circuit(n, depth, seed=3)
    result = benchmark.pedantic(
        Simulator(n).run, args=(circ,), rounds=1, iterations=1
    )
    state = result.state
    probs = state.probabilities()

    entropy = shannon_entropy(probs)
    entropy_pt = porter_thomas_entropy_nats(n)
    kl = porter_thomas_kl_divergence(probs, n)
    hog_mass = heavy_output_probability(probs)
    ideal = sample_bitstrings(state, shots, seed=1)
    uniform = np.random.default_rng(2).integers(0, 1 << n, shots)

    rows = [
        f"{n}-qubit depth-{depth} supremacy circuit ({len(circ)} gates)",
        f"entropy:        {entropy:.4f} nats (Porter-Thomas {entropy_pt:.4f})",
        f"KL to PT law:   {kl:.5f}",
        f"heavy mass:     {hog_mass:.4f} (PT: {PORTER_THOMAS_HOG_SCORE:.4f})",
        f"HOG score:      ideal {heavy_output_score(ideal, probs):.4f}, "
        f"uniform {heavy_output_score(uniform, probs):.4f} (QV line: 2/3)",
        f"linear XEB:     ideal {linear_xeb_fidelity(ideal, probs):+.3f}, "
        f"uniform {linear_xeb_fidelity(uniform, probs):+.3f}",
        f"log XEB:        ideal {log_xeb_fidelity(ideal, probs):+.3f}, "
        f"uniform {log_xeb_fidelity(uniform, probs):+.3f}",
    ]
    report_writer("output_statistics", rows)

    assert abs(entropy - entropy_pt) < 0.05
    assert kl < 0.01
    assert abs(hog_mass - PORTER_THOMAS_HOG_SCORE) < 0.02
    assert heavy_output_score(ideal, probs) > 2 / 3
    assert heavy_output_score(uniform, probs) < 2 / 3
    assert abs(linear_xeb_fidelity(ideal, probs) - 1.0) < 0.1
    assert abs(linear_xeb_fidelity(uniform, probs)) < 0.1
