"""Fig. 7: strong scaling of k-qubit kernels on a KNL node (1-64 cores).

Regenerates the modeled speedup curves for k = 1..5 at core counts
2**p, p = 0..6, on a 28-qubit state.  Memory-bound kernels (small k)
saturate once the cores exhaust MCDRAM bandwidth; the 5-qubit kernel
stays compute-bound and scales nearly ideally — the shape that justifies
the paper's thread-count-per-kernel-size tuning.
"""

from __future__ import annotations

from repro.perfmodel import CORI_KNL_NODE, strong_scaling_speedup

CORES = (1, 2, 4, 8, 16, 32, 64)


def bench_fig7_scaling_knl(benchmark, report_writer):
    rows = [f"{'cores':>5} | " + " ".join(f"{f'k={k}':>7}" for k in range(1, 6))]
    table = {}
    for cores in CORES:
        speedups = [
            strong_scaling_speedup(CORI_KNL_NODE, k, cores) for k in range(1, 6)
        ]
        table[cores] = speedups
        rows.append(
            f"{cores:>5} | " + " ".join(f"{s:>7.1f}" for s in speedups)
        )
    rows.append("")
    rows.append("paper Fig. 7: 5-qubit kernel closest to optimal; k=1 saturates")
    report_writer("fig7_scaling_knl", rows)

    at64 = table[64]
    # k = 5 scales best and k = 1 worst (Fig. 7's ordering).
    assert at64[4] == max(at64)
    assert at64[0] == min(at64)
    # k = 5 near-ideal; k = 1 saturates far below ideal.
    assert at64[4] > 0.9 * 64
    assert at64[0] < 0.6 * 64
    # Monotone in cores for every k.
    for k in range(5):
        series = [table[c][k] for c in CORES]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))

    benchmark(strong_scaling_speedup, CORI_KNL_NODE, 3, 64)
