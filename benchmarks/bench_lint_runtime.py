"""Full-tree lint wall time.

``repro lint`` gates CI, so its cost is part of every iteration loop;
this bench records how long the nine-rule catalogue takes over the
whole ``src/`` tree (parse + per-module rules + the whole-program
lock-order fixpoint).  The guarded expectation is "comfortably
interactive": a couple of seconds on any development host.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.staticcheck.lint import default_rules, run_lint

_SRC = Path(__file__).resolve().parent.parent / "src"


def bench_lint_runtime(benchmark, report_writer, bench_record):
    rules = default_rules()

    # Best-of-3 full-tree wall time (cold parse every round: the CLI
    # has no incremental mode).
    lint_seconds = float("inf")
    report = None
    for _ in range(3):
        start = time.perf_counter()
        report = run_lint([_SRC], rules=rules)
        lint_seconds = min(lint_seconds, time.perf_counter() - start)

    assert report is not None
    assert report.active == [], [f.format() for f in report.findings]

    per_file_ms = lint_seconds * 1e3 / max(report.files_checked, 1)
    rows = [
        f"{report.files_checked} files, {len(report.rules_run)} rules "
        f"(full src tree)",
        f"lint wall time: {lint_seconds * 1e3:.1f} ms "
        f"({per_file_ms:.2f} ms/file)",
        f"findings: {len(report.active)} active, "
        f"{len(report.baselined)} baselined",
    ]
    report_writer("lint_runtime", rows)
    bench_record(
        "lint_runtime",
        seconds=lint_seconds,
        params={"rules": len(report.rules_run)},
        metrics={
            "files": report.files_checked,
            "findings": len(report.active),
            "ms_per_file": per_file_ms,
        },
    )
    benchmark.pedantic(
        run_lint, args=([_SRC],), kwargs={"rules": rules},
        rounds=3, iterations=1,
    )
