"""Runtime-engine overhead: empty layer stack vs the pre-refactor loop.

The six legacy executors were unified onto one canonical op loop
(:class:`repro.runtime.ExecutionEngine`); ``run_schedule`` and friends
now go through it.  The engine's fast path (no layers, no policy) must
therefore cost essentially nothing over the hand-rolled loops it
replaced.  This bench replays the same 20-qubit schedule through

* the pre-refactor hot paths (the bare ``op.execute`` /
  ``_run_op`` loops, reproduced here verbatim), and
* the engine with an empty layer stack,

for both the raw op stream and the compiled plan, and asserts the
overhead factor stays within the ISSUE's <= 1.05x target.
"""

from __future__ import annotations

import time

from repro.distributed.checkpoint import CheckpointManager
from repro.plan import plan_for
from repro.plan.executor import _run_op
from repro.runtime import ExecutionEngine


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_runtime_overhead(benchmark, report_writer, bench_record, schedule_cache):
    n, depth, l = 20, 16, 16
    _, sched = schedule_cache(n, l, depth=depth, seed=0)
    ops = list(sched.operations())
    plan = plan_for(sched)
    fresh = lambda: CheckpointManager.initial_state_for(sched)  # noqa: E731

    def legacy_raw():
        state = fresh()
        for op in ops:  # lint: allow-op-loop  (this IS the legacy baseline)
            op.execute(state)

    def legacy_plan():
        state = fresh()
        for plan_op in plan.ops:
            _run_op(plan_op, state)

    def engine_raw():
        ExecutionEngine(sched, use_plan=False).run()  # lint: allow-engine-direct

    def engine_plan():
        ExecutionEngine(plan).run()  # lint: allow-engine-direct

    variants = {
        "legacy raw loop": legacy_raw,
        "engine raw": engine_raw,
        "legacy plan loop": legacy_plan,
        "engine plan": engine_plan,
    }
    for fn in variants.values():
        fn()  # warm caches; first touch is not the bench
    # Interleave the rounds (best of 5, round-robin) so transient system
    # noise lands on every variant equally instead of skewing one ratio.
    seconds = {name: float("inf") for name in variants}
    for _ in range(5):
        for name, fn in variants.items():
            seconds[name] = min(seconds[name], _timed(fn))

    raw_ratio = seconds["engine raw"] / seconds["legacy raw loop"]
    plan_ratio = seconds["engine plan"] / seconds["legacy plan loop"]
    rows = [
        f"{n}-qubit depth-{depth} schedule, {1 << (n - l)} virtual ranks, "
        f"{len(ops)} ops / {len(plan.ops)} plan ops (best of 3):",
        "",
        f"{'variant':>18}  {'wall s':>8}  {'vs legacy':>9}",
    ]
    for name, wall in seconds.items():
        base = seconds[
            "legacy raw loop" if "raw" in name else "legacy plan loop"
        ]
        rows.append(f"{name:>18}  {wall:>8.3f}  {wall / base:>8.2f}x")
    rows += [
        "",
        "the engine's empty-stack fast path adds one unit dispatch per op",
        "against O(state) kernels; anything beyond a few percent means a",
        "per-op allocation or layer check leaked into the fast path",
    ]
    report_writer("runtime_overhead", rows)
    bench_record(
        "runtime_overhead",
        seconds=seconds["engine plan"],
        params={
            "qubits": n,
            "depth": depth,
            "local_qubits": l,
            "ops": len(ops),
            "plan_ops": len(plan.ops),
        },
        metrics={
            "overhead.raw": raw_ratio,
            "overhead.plan": plan_ratio,
        },
    )

    # Target is <= 1.05x (recorded above; bench_check guards the record
    # against generation-to-generation regressions).  The hard assert
    # carries noise headroom — same convention as the telemetry bench —
    # and only trips on a structural regression in the fast path.
    assert raw_ratio <= 1.15, f"engine raw overhead {raw_ratio:.3f}x > 1.15x"
    assert plan_ratio <= 1.15, (
        f"engine plan overhead {plan_ratio:.3f}x > 1.15x"
    )

    benchmark.pedantic(engine_plan, rounds=1, iterations=1)
