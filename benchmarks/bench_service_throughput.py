"""Service-layer throughput: concurrent multi-tenant job execution.

The point of :mod:`repro.service` is that N tenants submitting the same
few circuits share one compiled plan and one gather-table cache instead
of paying compilation per request.  This bench drives a started
:class:`~repro.service.SimulationService` with a repeated-circuit
workload — 4 tenants x 6 jobs over 3 distinct circuits, result cache
disabled so every job really executes — and records

* jobs/second end to end (submission through terminal state),
* how many jobs were in flight concurrently (>= 8 on an 8-worker pool),
* the cross-request plan-cache hit rate (>0.5 is the acceptance bar;
  the workload's ideal is 24/27 = 0.889 — only the warmup compiles).
"""

from __future__ import annotations

import asyncio
import time

from repro.circuit import generate_supremacy_circuit
from repro.service import JobSpec, JobStatus, ServiceConfig, SimulationService

#: (qubits, depth, circuit seed) of the three shared workload circuits.
CIRCUITS = [(18, 12, 0), (18, 12, 1), (17, 12, 2)]
TENANTS = ["alpha", "beta", "gamma", "delta"]
JOBS_PER_TENANT = 6
WORKERS = 8


def _specs() -> list[JobSpec]:
    circuits = {
        key: generate_supremacy_circuit(q, d, seed=s)
        for key in CIRCUITS
        for (q, d, s) in [key]
    }
    specs = []
    for t_index, tenant in enumerate(TENANTS):
        for j in range(JOBS_PER_TENANT):
            qubits, depth, seed = CIRCUITS[(t_index + j) % len(CIRCUITS)]
            specs.append(
                JobSpec(
                    tenant=tenant,
                    circuit=circuits[(qubits, depth, seed)],
                    local_qubits=qubits - 2,
                    seed=t_index * JOBS_PER_TENANT + j,
                    use_result_cache=False,
                )
            )
    return specs


async def _workload() -> dict:
    service = SimulationService(ServiceConfig(max_workers=WORKERS))
    await service.start()
    try:
        specs = _specs()
        # Warmup: one job per distinct circuit compiles the shared plans
        # and touches the gather tables — the timed phase then measures
        # steady-state throughput with cross-request reuse in effect.
        warm = [
            JobSpec(
                tenant="warmup",
                circuit=spec.circuit,
                local_qubits=spec.local_qubits,
                seed=1000 + i,
                use_result_cache=False,
            )
            for i, spec in enumerate(specs[: len(CIRCUITS)])
        ]
        for job in [await service.submit(s) for s in warm]:
            await service.wait(job)

        start = time.perf_counter()
        jobs = await asyncio.gather(*(service.submit(s) for s in specs))
        # Everything submitted before anything finished counts as
        # concurrently in flight (queued or running).
        in_flight = sum(1 for job in jobs if not job.done)
        results = await asyncio.gather(*(service.wait(job) for job in jobs))
        wall = time.perf_counter() - start
        stats = service.stats()
    finally:
        await service.shutdown()
    return {
        "jobs": jobs,
        "results": results,
        "wall": wall,
        "in_flight": in_flight,
        "stats": stats,
    }


def bench_service_throughput(benchmark, report_writer, bench_record):
    out: dict = {}

    def run_once() -> None:
        out.update(asyncio.run(_workload()))

    benchmark.pedantic(run_once, rounds=1, iterations=1)

    jobs, results = out["jobs"], out["results"]
    total = len(jobs)
    assert all(j.status is JobStatus.COMPLETED for j in jobs)
    assert all(r.fingerprint for r in results)

    jobs_per_second = total / out["wall"]
    plan_stats = out["stats"]["plan_cache"]
    gather_stats = out["stats"]["gather_cache"]
    hit_rate = plan_stats["hit_rate"]

    # Acceptance bars: a real concurrent workload, and cross-request
    # plan reuse doing its job on repeated circuits.
    assert out["in_flight"] >= 8, (
        f"only {out['in_flight']} jobs were in flight concurrently"
    )
    assert hit_rate > 0.5, f"plan-cache hit rate {hit_rate:.3f} <= 0.5"

    rows = [
        f"{total} jobs, {len(TENANTS)} tenants, {len(CIRCUITS)} distinct "
        f"circuits, {WORKERS} workers:",
        "",
        f"{'jobs/second':>28}  {jobs_per_second:8.2f}",
        f"{'wall seconds':>28}  {out['wall']:8.3f}",
        f"{'jobs in flight (peak floor)':>28}  {out['in_flight']:8d}",
        f"{'plan-cache hit rate':>28}  {hit_rate:8.3f}",
        f"{'plan compilations':>28}  {plan_stats['misses']:8d}",
        f"{'gather-cache hit rate':>28}  {gather_stats['hit_rate']:8.3f}",
        "",
        "every job executed (result cache off); the 3 compilations are",
        "the warmup's distinct circuits — all 24 timed requests reused a",
        "compiled plan and the shared gather tables across tenants",
    ]
    report_writer("service_throughput", rows)
    bench_record(
        "service_throughput",
        seconds=out["wall"],
        params={
            "jobs": total,
            "tenants": len(TENANTS),
            "circuits": len(CIRCUITS),
            "workers": WORKERS,
        },
        metrics={
            "jobs_per_second": jobs_per_second,
            "in_flight": out["in_flight"],
            "plan_cache.hit_rate": hit_rate,
            "plan_cache.misses": plan_stats["misses"],
            "gather_cache.hit_rate": gather_stats["hit_rate"],
        },
    )
