"""Sec. 4.2.2: the 36-qubit Edison comparison run.

The paper's apples-to-apples comparison against [5] on identical
hardware: 64 Edison sockets, depth-25 36-qubit circuit, entropy of the
output distribution computed in 99 seconds (90.9 s simulation + 8.1 s
entropy reduction), a >4x improvement in time-to-solution over [5].

This bench prices our schedule on the Edison machine/network models,
estimates the entropy-reduction cost, and compares against the [5]
baseline model; it also runs a scaled-down end-to-end version with the
actual distributed entropy reduction.
"""

from __future__ import annotations

from repro.analysis import distributed_entropy, porter_thomas_entropy_nats
from repro.distributed import DistributedSimulator
from repro.perfmodel import BaselineModel, EDISON_SOCKET, TimelineModel
from repro.perfmodel.network import ARIES_EDISON
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.util.flops import COMPLEX128_BYTES

PAPER_TOTAL = 99.0
PAPER_SIM = 90.9
PAPER_ENTROPY = 8.1


def _entropy_seconds(local_qubits: int) -> float:
    """Entropy reduction: one read of the shard + a tiny all-reduce."""
    shard_bytes = (1 << local_qubits) * COMPLEX128_BYTES
    # p*log(p) per amplitude is compute-heavy; ~25% of STREAM is realistic
    # for a log-dominated reduction on Ivy Bridge.
    return shard_bytes / (0.25 * EDISON_SOCKET.dram_bw_gbs * 1e9)


def bench_edison_36q(benchmark, report_writer, schedule_cache):
    model = TimelineModel(
        EDISON_SOCKET, ARIES_EDISON, kernel_bw_efficiency=0.62
    )
    baseline = BaselineModel(
        EDISON_SOCKET, ARIES_EDISON, kernel_bw_efficiency=0.62
    )
    circuit, sched = schedule_cache(36, 30)  # 64 sockets = 2**6
    ours = model.predict(sched)
    entropy_s = _entropy_seconds(30)
    total = ours.total_seconds + entropy_s
    base = baseline.predict(circuit, 30)
    speedup = base.total_seconds / ours.total_seconds

    rows = [
        "36-qubit depth-25 circuit on 64 Edison sockets",
        f"simulation: model {ours.total_seconds:.1f}s (paper {PAPER_SIM}s) — "
        f"kernels {ours.kernel_seconds:.1f}s + comm {ours.comm_seconds:.1f}s",
        f"entropy reduction: model {entropy_s:.1f}s (paper {PAPER_ENTROPY}s)",
        f"total: model {total:.1f}s (paper {PAPER_TOTAL}s)",
        f"speedup over [5]: model {speedup:.1f}x (paper: 'over 4x')",
        f"per-socket GFLOPS: model {ours.gflops_per_node:.0f} "
        f"(~{2 * ours.gflops_per_node:.0f}/node vs paper 218/node, 47% peak)",
    ]
    report_writer("edison_36q", rows)

    assert abs(total - PAPER_TOTAL) / PAPER_TOTAL < 0.5
    assert speedup > 4.0
    # Per two-socket node: paper reports 218 GFLOPS sustained.
    assert 100 < 2 * ours.gflops_per_node < 400

    benchmark(model.predict, sched)


def bench_edison_entropy_end_to_end(benchmark, report_writer):
    """Scaled-down: simulate + reduce entropy on 16 qubits distributedly."""
    n, l = 16, 11
    from repro.circuit import generate_supremacy_circuit

    circ = generate_supremacy_circuit(n, 20, seed=9)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, seed=3))
    res = DistributedSimulator(n, l).run_schedule(sched)
    h = distributed_entropy(res.state)
    h_pt = porter_thomas_entropy_nats(n)
    rows = [
        f"16-qubit depth-20 distributed run on {res.state.num_ranks} virtual nodes",
        f"output entropy {h:.4f} nats vs Porter-Thomas {h_pt:.4f} nats",
        f"swaps executed: {res.comm.alltoall_steps}",
    ]
    report_writer("edison_entropy_end_to_end", rows)
    # 16 qubits at depth 20 sit slightly above the fully-scrambled limit.
    assert abs(h - h_pt) < 0.3

    benchmark(distributed_entropy, res.state)
