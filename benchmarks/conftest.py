"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper and writes a
paper-vs-measured report to ``benchmarks/results/<name>.txt`` (also
printed, visible with ``pytest -s``).  EXPERIMENTS.md summarises these
reports.

Benches additionally emit machine-readable ``BENCH_<name>.json`` records
(schema ``repro.bench/1``: name, params, seconds, bytes, metrics
snapshot) via the :func:`bench_record` fixture; ``tools/bench_check.py``
validates them and diffs against the previous generation (kept as
``.json.prev``) to warn about regressions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import SchedulerConfig, schedule_circuit

RESULTS_DIR = Path(__file__).parent / "results"

#: Schema tag stamped into every machine-readable bench record.
BENCH_SCHEMA = "repro.bench/1"


@pytest.fixture(scope="session")
def report_writer():
    """Write (and print) a named reproduction report."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, lines: list[str]) -> None:
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return write


@pytest.fixture(scope="session")
def bench_record():
    """Emit a machine-readable ``BENCH_<name>.json`` result record.

    ``record(name, *, seconds, params=None, bytes_moved=0, metrics=None)``
    writes ``benchmarks/results/BENCH_<name>.json`` following the
    ``repro.bench/1`` schema.  An existing record is first moved to
    ``<file>.prev`` so ``tools/bench_check.py`` can diff generations
    (warn-only).  ``metrics`` accepts a
    :class:`repro.telemetry.MetricsRegistry` (snapshotted) or a plain
    dict.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(
        name: str,
        *,
        seconds: float,
        params: dict | None = None,
        bytes_moved: int = 0,
        metrics=None,
    ) -> Path:
        snapshot = metrics
        if metrics is not None and hasattr(metrics, "snapshot"):
            snapshot = metrics.snapshot()
        payload = {
            "schema": BENCH_SCHEMA,
            "name": name,
            "params": dict(params or {}),
            "seconds": float(seconds),
            "bytes": int(bytes_moved),
            "metrics": snapshot or {},
            "unix_time": time.time(),
        }
        path = RESULTS_DIR / f"BENCH_{name}.json"
        if path.exists():
            path.replace(path.with_suffix(".json.prev"))
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return record


@pytest.fixture(scope="session")
def schedule_cache():
    """Memoised (circuit, schedule) pairs shared across benches.

    Scheduling a 45-qubit circuit takes ~10 s; several benches need the
    same schedules, so they are built once per session.  Table-2-style
    schedules follow the paper's instance convention (no trailing
    single-qubit layer; see EXPERIMENTS.md).
    """
    cache: dict = {}

    def get(
        num_qubits: int,
        local_qubits: int,
        *,
        depth: int = 25,
        kmax: int = 4,
        trailing: bool = False,
        seed: int = 0,
        scheduler_seed: int = 1,
    ):
        key = (num_qubits, local_qubits, depth, kmax, trailing, seed, scheduler_seed)
        if key not in cache:
            circuit = generate_supremacy_circuit(
                num_qubits, depth, seed=seed, include_trailing_singles=trailing
            )
            schedule = schedule_circuit(
                circuit,
                SchedulerConfig(
                    local_qubits=local_qubits, kmax=kmax, seed=scheduler_seed
                ),
            )
            cache[key] = (circuit, schedule)
        return cache[key]

    return get
