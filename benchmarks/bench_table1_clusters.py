"""Table 1: gate clustering for depth-25 supremacy circuits.

Regenerates the cluster counts for 30/36/42/45 qubits and kmax 3/4/5
with 30 local qubits, and times the scheduling pre-computation (the
paper quotes "less than 3 seconds using Python" per instance).
"""

from __future__ import annotations

from repro.circuit import circuit_stats, generate_supremacy_circuit
from repro.scheduling import SchedulerConfig, schedule_circuit

PAPER = {
    # (qubits, kmax): clusters; plus the paper's gate totals.
    (30, 3): 82, (30, 4): 46, (30, 5): 36,
    (36, 3): 98, (36, 4): 53, (36, 5): 41,
    (42, 3): 111, (42, 4): 58, (42, 5): 46,
    (45, 3): 111, (45, 4): 73, (45, 5): 51,
}
PAPER_GATES = {30: 369, 36: 447, 42: 528, 45: 569}


def bench_table1_clusters(benchmark, report_writer):
    """Full Table 1 sweep; the benchmark times one representative
    scheduling run (36 qubits, kmax=4)."""
    rows = [
        f"{'qubits':>6} {'gates':>6} {'(paper)':>8} "
        f"{'k3':>5} {'(p)':>5} {'k4':>5} {'(p)':>5} {'k5':>5} {'(p)':>5} "
        f"{'gates/cluster(k5)':>18}"
    ]
    for nq in (30, 36, 42, 45):
        circuit = generate_supremacy_circuit(nq, 25, seed=0)
        total = circuit_stats(circuit).total_gates
        clusters = {}
        gpc = 0.0
        for kmax in (3, 4, 5):
            sched = schedule_circuit(
                circuit, SchedulerConfig(local_qubits=30, kmax=kmax, seed=1)
            )
            clusters[kmax] = sched.num_clusters
            if kmax == 5:
                gpc = sched.gates_per_cluster()
        rows.append(
            f"{nq:>6} {total:>6} {PAPER_GATES[nq]:>8} "
            f"{clusters[3]:>5} {PAPER[(nq, 3)]:>5} "
            f"{clusters[4]:>5} {PAPER[(nq, 4)]:>5} "
            f"{clusters[5]:>5} {PAPER[(nq, 5)]:>5} "
            f"{gpc:>18.2f}"
        )
        # Shape assertions: monotone in kmax, >kmax gates merged on average.
        assert clusters[3] > clusters[4] > clusters[5]
        assert gpc > 5.0
    report_writer("table1_clusters", rows)

    circuit36 = generate_supremacy_circuit(36, 25, seed=0)

    def schedule_once():
        return schedule_circuit(
            circuit36, SchedulerConfig(local_qubits=30, kmax=4, seed=1)
        )

    result = benchmark.pedantic(schedule_once, rounds=1, iterations=1)
    # The paper: pre-computation terminates in 1-3 s on a laptop.  Our
    # pure-Python search budget is similar; assert it stays interactive.
    assert result.num_clusters > 0
