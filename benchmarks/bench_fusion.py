"""Cluster-refusion benchmarks: batched multi-op kernels vs op-by-op.

Two measurements:

* **Fusion on/off ratio** — a fusion-friendly workload (long runs of
  adjacent dense 2-qubit clusters on one local window, scheduled with a
  small cluster ``kmax`` so the plan compiler's refusion pass is the
  only thing that can merge them) executed under ``fusion_kmax=6`` vs
  ``fusion_kmax=0``.  The ratio is the headline number of Fusion v2 and
  is gated at >= 1.3x.
* **Joint autotune** — :func:`repro.codegen.tune_plan` searches fusion
  depth x kernel strategy x chunk size on the headline 18-qubit
  schedule.  The winner label (``plan[kmax=... strategy=... chunk=...]``)
  is persisted in ``BENCH_fusion.json``, where
  :data:`repro.plan.DEFAULT_FUSION_KMAX` reads the ``kmax=`` field back
  at import time — the same mechanism that sources
  :data:`repro.kernels.DEFAULT_CHUNK` from the kernels-autotune record.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.codegen import tune_plan
from repro.distributed import DistributedState
from repro.gates.gate import Gate
from repro.plan import PlanConfig, compile_program
from repro.scheduling import SchedulerConfig, schedule_circuit

_N, _DEPTH, _L = 18, 16, 14

#: Fusion-friendly workload shape: a smaller split keeps the bench fast
#: while leaving plenty of dense work per kernel sweep.
_FN, _FL = 16, 12


def _random_unitary(rng, k: int) -> np.ndarray:
    a = rng.standard_normal((1 << k, 1 << k))
    b = rng.standard_normal((1 << k, 1 << k))
    q, _ = np.linalg.qr(a + 1j * b)
    return q


def _fusion_friendly_circuit() -> Circuit:
    """Runs of dense 2-qubit gates on one overlapping local window.

    Scheduled with cluster ``kmax=2`` every gate becomes its own small
    cluster; only the refusion pass can merge the runs, so the on/off
    delta isolates exactly what Fusion v2 adds.
    """
    rng = np.random.default_rng(7)
    circuit = Circuit(_FN)
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 2), (1, 3), (2, 4)]
    for step in range(3):
        for a, b in pairs:
            circuit.append(
                Gate(f"u2_{step}_{a}_{b}", (a, b), _random_unitary(rng, 2))
            )
    return circuit


def _fresh_state(schedule) -> DistributedState:
    return DistributedState(
        schedule.num_qubits,
        schedule.local_qubits,
        init=getattr(schedule, "initial_state", "zero"),
        initial_global_qubits=schedule.initial_global_qubits or None,
    )


def _best_execution_seconds(schedule, config, *, repeats: int = 3) -> float:
    program = compile_program(schedule, config)
    best = float("inf")
    for _ in range(repeats):
        state = _fresh_state(schedule)
        start = time.perf_counter()
        program.execute(state)
        best = min(best, time.perf_counter() - start)
    return best


def bench_fusion(benchmark, report_writer, bench_record):
    # --- fusion on/off ratio on the fusion-friendly workload ----------
    circuit = _fusion_friendly_circuit()
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=_FL, kmax=2, seed=1)
    )
    fused_cfg = PlanConfig(fusion_kmax=6)
    unfused_cfg = PlanConfig(fusion_kmax=0)
    fused_plan = compile_program(schedule, fused_cfg)
    unfused_plan = compile_program(schedule, unfused_cfg)

    fused_seconds = _best_execution_seconds(schedule, fused_cfg)
    unfused_seconds = _best_execution_seconds(schedule, unfused_cfg)
    ratio = unfused_seconds / fused_seconds

    # Same physics either way.
    s_fused, s_unfused = _fresh_state(schedule), _fresh_state(schedule)
    fused_plan.execute(s_fused)
    unfused_plan.execute(s_unfused)
    np.testing.assert_allclose(
        s_fused.to_statevector().data,
        s_unfused.to_statevector().data,
        atol=1e-10,
    )

    assert ratio >= 1.3, (
        f"fusion on/off ratio {ratio:.2f}x < 1.3x "
        f"(fused {fused_seconds * 1e3:.2f} ms, "
        f"unfused {unfused_seconds * 1e3:.2f} ms)"
    )

    # --- joint autotune on the headline schedule ----------------------
    headline = schedule_circuit(
        generate_supremacy_circuit(_N, _DEPTH, seed=0),
        SchedulerConfig(local_qubits=_L, kmax=4, seed=1),
    )
    tuned = tune_plan(
        headline,
        lambda: _fresh_state(headline),
        fusion_candidates=(0, 4, 6, 8),
        repeats=7,
    )

    rows = [
        f"fusion-friendly workload: {len(circuit)} dense 2q gates, "
        f"{_FN} qubits (l={_FL}), cluster kmax=2",
        f"  fused (fusion_kmax=6): {len(fused_plan.ops)} plan ops, "
        f"{fused_seconds * 1e3:.2f} ms",
        f"  unfused (fusion_kmax=0): {len(unfused_plan.ops)} plan ops, "
        f"{unfused_seconds * 1e3:.2f} ms",
        f"  on/off ratio: {ratio:.2f}x (gate: >= 1.3x)",
        f"headline joint autotune ({_N}q depth-{_DEPTH}):",
    ] + [
        f"  {label}: {seconds * 1e3:.2f} ms"
        + ("   <-- winner" if label == tuned.strategy else "")
        for label, seconds in sorted(tuned.timings.items())
    ]
    report_writer("fusion", rows)
    bench_record(
        "fusion",
        seconds=fused_seconds,
        params={
            "qubits": _FN,
            "local_qubits": _FL,
            "gates": len(circuit),
            "cluster_kmax": 2,
        },
        metrics={
            "ratio": ratio,
            "fused_seconds": fused_seconds,
            "unfused_seconds": unfused_seconds,
            "fused_plan_ops": len(fused_plan.ops),
            "unfused_plan_ops": len(unfused_plan.ops),
            "refused_away_ops": fused_plan.counts["refused_away_ops"],
            "winner": tuned.strategy,
            "winner_seconds": tuned.seconds_per_call,
        },
    )

    state = _fresh_state(schedule)
    benchmark.pedantic(
        fused_plan.execute, args=(state,), rounds=3, iterations=1
    )
    assert state is not None
    assert s_fused.norm() == pytest.approx(1.0)
