"""Sanitizer-mode overhead vs plain schedule execution.

``simulate --sanitize`` buys op-pinned NaN/norm/checksum diagnostics by
re-reading every shard at every op boundary.  This bench runs a
20-qubit circuit both ways and reports the cost so users can decide when
to leave the sanitizer armed: the checks are O(state) sweeps against
kernels that are also O(state), so the slowdown is a constant factor,
not an asymptotic change.
"""

from __future__ import annotations

import time

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.staticcheck import SanitizerConfig, run_sanitized


def bench_sanitizer_overhead(benchmark, report_writer, bench_record):
    n, depth, l = 20, 16, 16
    circ = generate_supremacy_circuit(n, depth, seed=0)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=4, seed=1))
    num_ops = len(list(sched.operations()))
    sim = DistributedSimulator(n, l)

    sim.run_schedule(sched)  # warm caches so the baseline isn't first-touch
    start = time.perf_counter()
    plain = sim.run_schedule(sched)
    plain_seconds = time.perf_counter() - start

    configs = {
        "nan-only": SanitizerConfig(check_norm=False, check_checksums=False),
        "nan+norm": SanitizerConfig(check_checksums=False),
        "full": SanitizerConfig(),
    }
    rows = [
        f"{n}-qubit depth-{depth} schedule, {1 << (n - l)} virtual ranks, "
        f"{num_ops} ops:",
        "",
        f"{'mode':>10}  {'wall s':>8}  {'overhead s':>10}  {'slowdown':>8}",
        f"{'plain':>10}  {plain_seconds:>8.3f}  {'-':>10}  {'1.00x':>8}",
    ]
    for name, config in configs.items():
        start = time.perf_counter()
        state, report = run_sanitized(sched, config=config)
        wall = time.perf_counter() - start
        assert report.passed, report.format()
        assert plain.state.to_statevector().allclose(
            state.to_statevector(), atol=1e-12
        )
        rows.append(
            f"{name:>10}  {wall:>8.3f}  {report.overhead_seconds:>10.3f}  "
            f"{wall / plain_seconds:>7.2f}x"
        )

    rows += [
        "",
        "the full sanitizer re-reads every shard per op (NaN scan + norm",
        "+ CRC32), a constant-factor cost against O(state) kernels; arm",
        "it for debugging runs and fault drills, not production sweeps",
    ]
    report_writer("sanitizer_overhead", rows)
    bench_record(
        "sanitizer_overhead",
        seconds=plain_seconds,
        params={"qubits": n, "depth": depth, "local_qubits": l,
                "ops": num_ops},
        bytes_moved=plain.comm.bytes_on_network,
    )

    benchmark.pedantic(
        lambda: run_sanitized(sched), rounds=1, iterations=1
    )
