"""Recovery overhead vs checkpoint interval for fault-tolerant runs.

The paper's 45-qubit run held 0.5 PB of amplitudes across 8192 nodes; at
that scale a rank failure mid-run is a when, not an if.  This bench
crashes a rank mid-swap under ``ResilientExecutor`` at several
checkpoint intervals and reports the classic trade-off: frequent
checkpoints cost more checkpoint I/O but waste fewer redundant
all-to-all bytes on replay after the restart.
"""

from __future__ import annotations

from repro.circuit import generate_supremacy_circuit
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilientExecutor,
    RetryPolicy,
    swap_op_indices,
)
from repro.scheduling import SchedulerConfig, schedule_circuit


def _no_sleep(_seconds: float) -> None:
    """Backoff delays are accounted, not actually slept, in the bench."""


def bench_recovery_overhead(benchmark, report_writer, bench_record, tmp_path):
    n, depth, l = 12, 24, 10
    circ = generate_supremacy_circuit(n, depth, seed=0)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=4, seed=1))
    swaps = swap_op_indices(sched)
    assert len(swaps) >= 2, "bench needs earlier swaps for replay to re-move"

    # Crash mid-way through the last all-to-all: the worst case for
    # redundant replay, since the whole run since the previous checkpoint
    # is repeated.
    plan = FaultPlan(
        seed=7, faults=(FaultSpec(op_index=swaps[-1], kind="crash", phase="mid"),)
    )
    policy = RetryPolicy(max_retries=3, max_restarts=2)

    num_ops = len(list(sched.operations()))
    intervals = (1, 4, num_ops)  # every op / moderate / final-only
    rows = [
        f"{n}-qubit depth-{depth} schedule, {1 << (n - l)} virtual ranks, "
        f"{num_ops} ops, crash mid-swap at op {swaps[-1]}:",
        "",
        f"{'interval':>8}  {'ckpts':>5}  {'ckpt MiB':>8}  "
        f"{'redundant MiB':>13}  {'restarts':>8}",
    ]
    reports = {}
    for every in intervals:
        workdir = tmp_path / f"ckpt_every_{every}"
        executor = ResilientExecutor(
            sched,
            workdir,
            plan=plan,
            policy=policy,
            checkpoint_every=every,
            sleep=_no_sleep,
        )
        result = executor.run()
        r = result.report
        reports[every] = r
        rows.append(
            f"{every:>8}  {r.checkpoints_written:>5}  "
            f"{r.checkpoint_bytes / 2**20:>8.2f}  "
            f"{r.redundant_bytes / 2**20:>13.3f}  {r.restarts:>8}"
        )
        assert r.restarts == 1

    rows += [
        "",
        "tighter intervals replay fewer redundant bytes at the price of",
        "more checkpoint I/O (paper Sec. 2: double-buffered state already",
        "provides the in-memory copy a checkpoint would snapshot)",
    ]
    report_writer("recovery_overhead", rows)
    bench_record(
        "recovery_overhead",
        seconds=reports[4].wall_overhead_seconds,
        params={"qubits": n, "depth": depth, "local_qubits": l,
                "checkpoint_every": 4},
        bytes_moved=reports[4].redundant_bytes,
        metrics={
            "restarts": reports[4].restarts,
            "checkpoint_bytes": reports[4].checkpoint_bytes,
        },
    )

    # The trade-off must actually materialise: checkpointing every op
    # writes the most checkpoint bytes, checkpointing only at the end
    # replays the most redundant traffic.
    assert (
        reports[1].checkpoint_bytes
        > reports[4].checkpoint_bytes
        > reports[num_ops].checkpoint_bytes
    )
    assert reports[1].redundant_bytes < reports[num_ops].redundant_bytes

    def run_once():
        workdir = tmp_path / "bench_timing"
        executor = ResilientExecutor(
            sched, workdir, plan=plan, policy=policy,
            checkpoint_every=4, sleep=_no_sleep,
        )
        executor.manager.clear()
        return executor.run()

    benchmark.pedantic(run_once, rounds=1, iterations=1)
