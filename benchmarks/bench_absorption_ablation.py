"""Sec. 3.5 absorption ablation: diagonal gates folded into clusters.

The paper: a specialized global T gate "results in a global phase, which
can be absorbed into the next gate matrix to be applied".  This bench
runs the same scheduled circuit with and without absorption and counts
the state sweeps: absorbed diagonals cost zero passes over the
amplitudes, which is what the Table-2 performance model assumes.
"""

from __future__ import annotations

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator


def bench_absorption_ablation(benchmark, report_writer):
    n, depth, l = 16, 14, 11
    circ = generate_supremacy_circuit(n, depth, seed=8)
    ref = Simulator(n).run(circ).state

    profiles = {}
    for absorb in (False, True):
        sched = schedule_circuit(
            circ,
            SchedulerConfig(local_qubits=l, kmax=4, seed=3, absorb_diagonals=absorb),
        )
        res = DistributedSimulator(n, l).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)
        profiles[absorb] = (sched, res)

    plain_sched, plain_res = profiles[False]
    abs_sched, abs_res = profiles[True]
    rows = [
        f"{n}-qubit depth-{depth} circuit, {1 << (n - l)} virtual nodes:",
        f"  without absorption: {plain_res.kernel_cost.total_calls} kernel "
        f"sweeps ({plain_res.kernel_cost.diagonal_calls} diagonal), "
        f"{plain_sched.num_specialized_gates} specialized gates",
        f"  with absorption:    {abs_res.kernel_cost.total_calls} kernel "
        f"sweeps ({abs_res.kernel_cost.diagonal_calls} diagonal), "
        f"{abs_sched.num_absorbed_gates} gates absorbed into cluster matrices",
        "",
        "paper Sec. 3.5: absorbed diagonals cost no extra computation",
    ]
    report_writer("absorption_ablation", rows)

    assert abs_res.kernel_cost.total_calls <= plain_res.kernel_cost.total_calls
    assert abs_res.kernel_cost.diagonal_calls <= plain_res.kernel_cost.diagonal_calls
    assert abs_sched.num_absorbed_gates > 0

    sim = DistributedSimulator(n, l)
    benchmark.pedantic(sim.run_schedule, args=(abs_sched,), rounds=1, iterations=1)
