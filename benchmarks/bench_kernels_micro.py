"""Kernel microbenchmarks on this host (pytest-benchmark timings).

Times the k-qubit kernel strategies on a 2**20-amplitude state: the
generic indexed kernel (with the autotuner's preferred blocking), the
generated specialized kernels, and the diagonal fast path.  These are
the numbers the autotuner's feedback loop selects between (Sec. 3.2's
code-generation/benchmarking loop).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import AutoTuner, generated_kernel
from repro.gates import random_unitary
from repro.kernels import apply_diagonal_gate, apply_gate_indexed
from repro.util.rng import random_statevector

_N = 20


@pytest.fixture(scope="module")
def state():
    return random_statevector(_N, 0).copy()


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
def bench_indexed_kernel(benchmark, state, k):
    u = random_unitary(k, 0)
    qubits = tuple(range(k))
    benchmark(apply_gate_indexed, state, u, qubits, chunk_size=1 << 14)


@pytest.mark.parametrize("k", [1, 2, 4])
def bench_generated_kernel(benchmark, state, k):
    qubits = tuple(range(0, 2 * k, 2))
    fn, _src = generated_kernel(_N, qubits)
    u = random_unitary(k, 0)
    benchmark(fn, state, u)


def bench_diagonal_kernel(benchmark, state):
    diag = np.exp(1j * np.random.default_rng(0).standard_normal(4))
    benchmark(apply_diagonal_gate, state, diag, (3, 11))


def bench_high_order_stride_penalty(benchmark, state):
    """The Fig. 6/9 effect as a raw host measurement."""
    u = random_unitary(4, 0)
    benchmark(
        apply_gate_indexed, state, u, tuple(range(_N - 4, _N)), chunk_size=1 << 14
    )


def bench_autotuned_kernel(benchmark, state, report_writer, bench_record):
    tuner = AutoTuner(repeats=2)
    result = tuner.tune(_N, (2, 9))
    diag_result = tuner.tune(_N, (2, 9), diagonal=True)
    rows = [f"autotune (n={_N}, qubits=(2,9)) winner: {result.strategy}"]
    for label, seconds in sorted(result.timings.items(), key=lambda kv: kv[1]):
        rows.append(f"  {label:<24} {seconds * 1e3:8.3f} ms")
    rows.append(f"diagonal-mode winner: {diag_result.strategy}")
    for label, seconds in sorted(
        diag_result.timings.items(), key=lambda kv: kv[1]
    ):
        rows.append(f"  {label:<24} {seconds * 1e3:8.3f} ms")
    report_writer("kernels_autotune", rows)
    bench_record(
        "kernels_autotune",
        seconds=min(result.timings.values()),
        params={"qubits": _N, "gate_qubits": [2, 9]},
        metrics={
            "winner": result.strategy,
            "diagonal_winner": diag_result.strategy,
            **{label: seconds for label, seconds in result.timings.items()},
            **{
                f"diagonal/{label}": seconds
                for label, seconds in diag_result.timings.items()
            },
        },
    )
    u = random_unitary(2, 0)
    kernel = tuner.best_kernel(_N, (2, 9))
    benchmark(kernel, state, u)
