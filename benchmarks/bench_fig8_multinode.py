"""Fig. 8: multi-node strong scaling on Cori II.

Regenerates the speedup curves for a 36-qubit circuit on 16/32/64 nodes
and a 42-qubit circuit on 1024/2048/4096 nodes.  For each node count the
scheduler produces a schedule at the implied local-qubit split and the
timeline model prices it; speedups are relative to the smallest
configuration of each series, exactly as the figure plots them.
"""

from __future__ import annotations

import math

from repro.perfmodel import ARIES_DRAGONFLY, CORI_KNL_NODE, TimelineModel

SERIES = {36: (16, 32, 64), 42: (1024, 2048, 4096)}


def bench_fig8_multinode(benchmark, report_writer, schedule_cache):
    model = TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)
    rows = [f"{'qubits':>6} {'nodes':>6} {'T[s]':>9} {'speedup':>8} {'comm%':>6}"]
    speedups = {}
    for nq, node_counts in SERIES.items():
        times = []
        for nodes in node_counts:
            l = nq - int(math.log2(nodes))
            _, sched = schedule_cache(nq, l)
            r = model.predict(sched)
            times.append(r.total_seconds)
            rows.append(
                f"{nq:>6} {nodes:>6} {r.total_seconds:>9.2f} "
                f"{times[0] / r.total_seconds:>8.2f} "
                f"{100 * r.comm_fraction:>6.1f}"
            )
        speedups[nq] = [times[0] / t for t in times]
        rows.append("")
    rows.append(
        "paper Fig. 8: both series scale to ~3-4x at 4x nodes, 42q slightly "
        "worse (larger comm share)"
    )
    report_writer("fig8_multinode", rows)

    for nq, s in speedups.items():
        # monotone speedup with node count
        assert s[0] == 1.0
        assert s[0] < s[1] < s[2], (nq, s)
        # sub-linear but substantial: between ~2x and 4.2x at 4x nodes
        # (the paper's Fig. 8 shape; exact values depend on which swap
        # count the stage search finds per local-qubit split)
        assert 1.8 < s[2] <= 4.2, (nq, s)

    _, sched = schedule_cache(36, 31)
    benchmark(model.predict, sched)
