"""Fig. 2: roofline plots of the kernel optimization steps.

Regenerates the Edison-socket (2a) and Cori-II-KNL (2b) roofline points
for the 1- and 4-qubit kernels across the three optimization steps, and
measures this machine's own kernel throughput at the same operational
intensities (the local analogue of the plotted points).
"""

from __future__ import annotations

import time


from repro.gates import random_unitary
from repro.kernels import apply_gate_indexed, apply_gate_two_vector
from repro.perfmodel import CORI_KNL_NODE, EDISON_SOCKET, roofline_table
from repro.util.flops import gate_flops, operational_intensity
from repro.util.rng import random_statevector

_N = 20  # 2**20 amplitudes = 16 MiB: representative streaming size


def _measure_gflops(kernel, state, matrix, qubits, k, reps=3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        kernel(state, matrix, qubits)
        best = min(best, time.perf_counter() - start)
    return gate_flops(_N, k) / best / 1e9


def bench_fig2_roofline(benchmark, report_writer):
    rows = []
    for machine in (EDISON_SOCKET, CORI_KNL_NODE):
        rows.append(f"--- {machine.name} (peak {machine.peak_gflops} GFLOPS) ---")
        rows.append(
            f"{'step':<58} {'OI':>5} {'roof':>8} {'model':>8} {'paper':>8}"
        )
        for p in roofline_table(machine):
            paper = f"{p.paper_gflops:.1f}" if p.paper_gflops else "-"
            rows.append(
                f"{p.label:<58} {p.oi:>5.2f} {p.roof_gflops:>8.1f} "
                f"{p.modeled_gflops:>8.1f} {paper:>8}"
            )
        rows.append("")

    # Local measurements: two-vector baseline vs in-place indexed kernel,
    # k = 1 and k = 4 — the same "optimization step" story on this host.
    state = random_statevector(_N, 0).copy()
    rows.append("--- this machine (measured, 2**20 amplitudes) ---")
    measured = {}
    for k, qubits in [(1, (3,)), (4, (0, 1, 2, 3))]:
        u = random_unitary(k, 0)
        baseline = _measure_gflops(
            lambda s, m, q: apply_gate_two_vector(s, m, q), state, u, qubits, k
        )
        tuned = _measure_gflops(
            lambda s, m, q: apply_gate_indexed(s, m, q, chunk_size=1 << 14),
            state,
            u,
            qubits,
            k,
        )
        measured[k] = (baseline, tuned)
        rows.append(
            f"k={k}: OI={operational_intensity(k):.2f}  "
            f"two-vector {baseline:.2f} GFLOPS -> indexed {tuned:.2f} GFLOPS"
        )
    report_writer("fig2_roofline", rows)

    # Shape: the 4-qubit kernel's higher OI must buy higher throughput
    # than the 1-qubit kernel on this memory-bound workload.
    assert measured[4][1] > measured[1][1]

    u4 = random_unitary(4, 0)
    benchmark(apply_gate_indexed, state, u4, (0, 1, 2, 3), chunk_size=1 << 14)
