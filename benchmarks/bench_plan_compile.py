"""Plan compilation and gather-table cache benchmarks.

Measures what the compiled-execution-plan layer buys on this host: how
long ``compile_program`` takes on the headline 18-qubit depth-16
schedule (compilation is a one-off cost amortised over every rank and
rerun), and the gather-table cache hit rate while that plan executes on
a cold cache — with ``2**(n-l)`` virtual ranks replaying the same flat
kernel ops, all but the first rank's table builds must hit.
"""

from __future__ import annotations

import time

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.kernels import GATHER_CACHE
from repro.plan import compile_program, plan_for
from repro.scheduling import SchedulerConfig, schedule_circuit

_N, _DEPTH, _L = 18, 16, 14


@pytest.fixture(scope="module")
def circuit():
    return generate_supremacy_circuit(_N, _DEPTH, seed=0)


@pytest.fixture(scope="module")
def schedule(circuit):
    return schedule_circuit(circuit, SchedulerConfig(local_qubits=_L, kmax=4, seed=1))


def bench_plan_compile(benchmark, schedule, report_writer, bench_record):
    # Time compilation itself (fresh CompiledProgram each round, no
    # plan_for memoisation involved).
    compile_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        plan = compile_program(schedule)
        compile_seconds = min(compile_seconds, time.perf_counter() - start)

    # Execute the plan from a cold gather-table cache.  Compilation
    # pre-warms every layout-determined table (repro.plan.warmup), and
    # the batched apply paths fetch each table once per op, so even the
    # cold run's counted lookups mostly hit; the remaining misses are
    # compile-time lift tables and rank-conditional global sub-diagonal
    # factors.  A second run must then be fully warm: zero new misses.
    GATHER_CACHE.clear()
    sim = DistributedSimulator(_N, _L)
    result = sim.run_schedule(schedule)
    hits, misses = GATHER_CACHE.hits, GATHER_CACHE.misses
    hit_rate = hits / max(hits + misses, 1)
    assert result.state.norm() == pytest.approx(1.0)
    assert hit_rate > 0.5, f"cold plan-cache hit rate {hit_rate:.4f} <= 0.5"
    sim.run_schedule(schedule)
    assert GATHER_CACHE.misses == misses, "warm run built new tables"

    counts = plan.counts
    rows = [
        f"{_N}-qubit depth-{_DEPTH} schedule, {1 << (_N - _L)} virtual ranks "
        f"(l={_L})",
        f"compile: {len(plan.ops)} plan ops from {plan.num_source_ops} "
        f"schedule ops in {compile_seconds * 1e3:.2f} ms",
        f"  kernel={counts['kernel_ops']} "
        f"fused_kernel={counts['fused_kernel_ops']} "
        f"(refused away {counts['refused_away_ops']}) "
        f"diagonal={counts['diagonal_ops']} "
        f"fused_diagonal={counts['fused_diagonal_ops']} "
        f"(fused away {counts['fused_away_ops']}) "
        f"swap={counts['swap_ops']} passthrough={counts['passthrough_ops']}",
        f"gather-table cache (cold run): {hits} hits / {misses} misses "
        f"= {hit_rate:.4f} hit rate, "
        f"{GATHER_CACHE.bytes_saved / 1e6:.1f} MB of index builds avoided",
    ]
    report_writer("plan_compile", rows)
    bench_record(
        "plan_compile",
        seconds=compile_seconds,
        params={"qubits": _N, "depth": _DEPTH, "local_qubits": _L, "kmax": 4},
        metrics={
            "plan_ops": len(plan.ops),
            "source_ops": plan.num_source_ops,
            "fused_away_ops": counts["fused_away_ops"],
            "fused_kernel_ops": counts["fused_kernel_ops"],
            "refused_away_ops": counts["refused_away_ops"],
            "cache_hits": hits,
            "cache_misses": misses,
            "hit_rate": hit_rate,
            "cache_bytes_saved": GATHER_CACHE.bytes_saved,
        },
    )
    benchmark.pedantic(compile_program, args=(schedule,), rounds=3, iterations=1)


def bench_plan_reuse(benchmark, schedule):
    """plan_for memoises on the schedule: a warm lookup is ~free."""
    plan_for(schedule)  # warm
    benchmark(plan_for, schedule)
