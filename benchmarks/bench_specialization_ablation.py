"""Sec. 3.5 ablation: global gate specialization halves the swap count.

The paper: with CZ/T specialization a depth-25 45-qubit circuit needs 2
global-to-local swaps instead of 3 ("whereas 3 are required without gate
specialization"), and the 36-qubit circuit drops from 2 to 1.  This
bench schedules the same circuits with specialization on and off and
verifies the executed communication steps on a real (scaled-down)
distributed run.
"""

from __future__ import annotations

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, find_stages, schedule_circuit
from repro.statevector import Simulator


def bench_specialization_swap_counts(benchmark, report_writer):
    rows = [f"{'qubits':>6} {'local':>5} {'with spec':>10} {'without':>8} {'paper':>12}"]
    results = {}
    for nq, l, paper in [(36, 30, "2 -> (1*)"), (42, 30, "2 / -"), (45, 32, "2 / 3")]:
        circ = generate_supremacy_circuit(
            nq, 25, seed=0, include_initial_hadamards=False
        )
        with_spec = find_stages(circ, l, specialize=True, seed=1, restarts=3).num_swaps
        without = find_stages(circ, l, specialize=False, seed=1, restarts=3).num_swaps
        results[nq] = (with_spec, without)
        rows.append(f"{nq:>6} {l:>5} {with_spec:>10} {without:>8} {paper:>12}")
    rows.append("")
    rows.append(
        "(*) the paper's 36q '2 -> 1' swap search result reproduces under the "
        "no-trailing-layer convention; see EXPERIMENTS.md"
    )
    report_writer("specialization_ablation", rows)

    for nq, (with_spec, without) in results.items():
        assert with_spec <= without, (nq, with_spec, without)
        assert with_spec == 2, (nq, with_spec)

    circ = generate_supremacy_circuit(45, 25, seed=0, include_initial_hadamards=False)
    benchmark.pedantic(
        find_stages, args=(circ, 32), kwargs={"specialize": False, "seed": 1},
        rounds=1, iterations=1,
    )


def bench_specialization_executed(benchmark, report_writer):
    """Scaled-down end-to-end check: both schedules produce identical
    amplitudes, and the specialized one needs fewer all-to-alls."""
    n, depth, l = 14, 12, 9
    circ = generate_supremacy_circuit(n, depth, seed=1)
    ref = Simulator(n).run(circ).state

    runs = {}
    for spec in (True, False):
        sched = schedule_circuit(
            circ,
            SchedulerConfig(local_qubits=l, specialize_global_diagonal=spec, seed=2),
        )
        res = DistributedSimulator(n, l).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)
        runs[spec] = (sched.num_swaps, res.comm.alltoall_steps, res.comm.bytes_on_network)

    rows = [
        f"14-qubit depth-12 end-to-end (l={l}):",
        f"  with specialization:    swaps={runs[True][0]}  bytes={runs[True][2]}",
        f"  without specialization: swaps={runs[False][0]}  bytes={runs[False][2]}",
    ]
    report_writer("specialization_executed", rows)
    assert runs[True][0] <= runs[False][0]
    assert runs[True][1] == runs[True][0]

    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, seed=2))
    sim = DistributedSimulator(n, l)
    benchmark.pedantic(sim.run_schedule, args=(sched,), rounds=1, iterations=1)
