"""Telemetry overhead: tracing off vs spans vs spans+metrics.

The observability layer is disabled by default and must stay near-free in
that mode: the instrumented hot paths pay one attribute check per op.
This bench runs the same 20-qubit schedule in the three modes and
reports the cost of each tier, asserting the disabled tier stays within
the accepted noise band of the ISSUE's <= 5% requirement.
"""

from __future__ import annotations

import time

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.telemetry import Telemetry


def _timed_run(n: int, l: int, sched, telemetry) -> float:
    sim = DistributedSimulator(n, l, telemetry=telemetry)
    start = time.perf_counter()
    sim.run_schedule(sched)
    return time.perf_counter() - start


def bench_telemetry_overhead(benchmark, report_writer, bench_record):
    n, depth, l = 20, 16, 16
    circ = generate_supremacy_circuit(n, depth, seed=0)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=4, seed=1))
    num_ops = len(list(sched.operations()))

    _timed_run(n, l, sched, None)  # warm caches; first touch is not the bench

    # Best-of-3 per mode: wall time on a shared host is noisy and we are
    # comparing ~constant-factor differences.
    modes = {
        "off": lambda: None,
        "spans": lambda: Telemetry.spans_only(per_rank=False),
        "spans+ranks": lambda: Telemetry.spans_only(per_rank=True),
        "spans+metrics": lambda: Telemetry.enabled(per_rank=True),
    }
    seconds = {}
    for name, make in modes.items():
        seconds[name] = min(
            _timed_run(n, l, sched, make()) for _ in range(3)
        )

    base = seconds["off"]
    rows = [
        f"{n}-qubit depth-{depth} schedule, {1 << (n - l)} virtual ranks, "
        f"{num_ops} ops (best of 3):",
        "",
        f"{'mode':>14}  {'wall s':>8}  {'slowdown':>8}",
    ]
    for name, wall in seconds.items():
        rows.append(f"{name:>14}  {wall:>8.3f}  {wall / base:>7.2f}x")
    rows += [
        "",
        "disabled telemetry is one attribute check per op; span recording",
        "adds dict+list work per op, per-rank lanes and metric histograms",
        "a bit more — all constant factors against O(state) kernels",
    ]
    report_writer("telemetry_overhead", rows)
    bench_record(
        "telemetry_overhead",
        seconds=base,
        params={"qubits": n, "depth": depth, "local_qubits": l, "ops": num_ops},
        metrics={
            f"slowdown.{name}": wall / base for name, wall in seconds.items()
        },
    )

    # Span recording must stay a modest constant factor on real kernels;
    # 2x is far above its steady-state cost and only trips on a
    # pathological regression (e.g. spans on the per-amplitude path).
    assert seconds["spans"] <= base * 2.0

    benchmark.pedantic(
        lambda: _timed_run(n, l, sched, None), rounds=1, iterations=1
    )
