#!/usr/bin/env python
"""AST-based self-lint for the repro tree.

Five project-specific checks ruff does not cover in the shapes we care
about:

* **mutable-default** — a function parameter defaulting to a mutable
  literal (``[]``, ``{}``, ``set()``, ...).  Shared across calls; the
  classic aliasing bug.
* **float-eq** — ``==`` / ``!=`` where either side is a float literal or
  an expression that is obviously float-valued (``math.pi``, a float
  constant attribute).  Amplitude code must compare with tolerances
  (``math.isclose``, ``np.allclose``, ``abs(a-b) < tol``).  Comparisons
  against ``0.0`` sentinels in kernel fast paths are still flagged as
  advisory — suppress with ``# lint: allow-float-eq`` on the line.
* **view-return** — a function whose docstring promises a *copy* but
  returns a numpy slice/``reshape``/``ravel``/``view`` expression (all
  may alias the original buffer).
* **op-loop** — a ``for ... in schedule.operations(...)`` loop whose
  body calls ``op.execute(...)``: a hand-rolled executor.  The canonical
  op loop lives in ``repro/runtime`` (exempt); everything else must run
  through :class:`repro.runtime.ExecutionEngine` so the
  six-parallel-executors problem cannot silently regrow.
* **engine-direct** — a direct ``ExecutionEngine(...)`` construction
  outside ``repro/runtime`` (its home) and ``repro/service`` (the job
  engine that wraps it).  Everything else should go through the
  ``run_schedule`` family or submit a job to the service so engines
  pick up the shared layer stacks and caches; deliberate wrappers and
  benches suppress with ``# lint: allow-engine-direct``.

Usage::

    python tools/repro_lint.py [paths...]   # default: src/

Exit code 0 when clean, 1 when any finding is emitted.  Suppress a
specific line with a ``# lint: allow-<check>`` comment.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
#: numpy-array producing expressions that may alias their input.
VIEW_ATTRS = {"view", "ravel", "reshape", "transpose", "swapaxes", "T"}
COPY_WORDS = ("copy", "copies", "fresh array", "new array")


@dataclass(frozen=True)
class LintFinding:
    """One lint hit."""

    path: str
    line: int
    check: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CALLS and not node.args
    return False


def _is_floaty(node: ast.expr) -> bool:
    """Expressions that are obviously float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Attribute):
        # math.pi / math.e / np.pi style constants
        return node.attr in {"pi", "e", "inf", "nan", "tau"}
    return False


def _calls_attr(node: ast.AST, attr: str) -> bool:
    """True when *node* (recursively) calls ``something.<attr>(...)``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == attr
        ):
            return True
    return False


def _returns_view(node: ast.expr) -> bool:
    """Return-expressions that may alias a numpy buffer."""
    if isinstance(node, ast.Subscript):
        # arr[...] with a slice component can alias
        sub = node.slice
        parts = sub.elts if isinstance(sub, ast.Tuple) else [sub]
        return any(isinstance(p, ast.Slice) for p in parts)
    if isinstance(node, ast.Attribute):
        return node.attr in VIEW_ATTRS
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in VIEW_ATTRS
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.findings: list[LintFinding] = []
        norm = path.replace("\\", "/")
        # The canonical loop itself lives in repro/runtime.
        self.allow_op_loops = "repro/runtime" in norm
        # Engine construction is the runtime's and the service's job
        # (their own test packages exercise the constructor directly).
        self.allow_engine_direct = any(
            part in norm
            for part in (
                "repro/runtime",
                "repro/service",
                "tests/runtime",
                "tests/service",
            )
        )

    # ------------------------------------------------------------------
    def _suppressed(self, line: int, check: str) -> bool:
        if 1 <= line <= len(self.lines):
            return f"lint: allow-{check}" in self.lines[line - 1]
        return False

    def _add(self, line: int, check: str, message: str) -> None:
        if not self._suppressed(line, check):
            self.findings.append(
                LintFinding(self.path, line, check, message)
            )

    # ------------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self._add(
                    default.lineno,
                    "mutable-default",
                    f"function {node.name!r} has a mutable default "
                    "argument; use None and create inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_copy_doc(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if (
            not self.allow_op_loops
            and _calls_attr(node.iter, "operations")
            and any(_calls_attr(stmt, "execute") for stmt in node.body)
        ):
            self._add(
                node.lineno,
                "op-loop",
                "hand-rolled schedule executor (op.execute loop over "
                "schedule.operations()); run it through "
                "repro.runtime.ExecutionEngine instead",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "ExecutionEngine" and not self.allow_engine_direct:
            self._add(
                node.lineno,
                "engine-direct",
                "direct ExecutionEngine construction outside repro/runtime "
                "and repro/service; use the run_schedule family or submit "
                "a service job (# lint: allow-engine-direct for deliberate "
                "wrappers)",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        floaty = [node.left, *node.comparators]
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops) and any(
            _is_floaty(n) for n in floaty
        ):
            self._add(
                node.lineno,
                "float-eq",
                "== / != against a float; compare with a tolerance "
                "(math.isclose / np.allclose / abs(a-b) < tol)",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def _check_copy_doc(self, node: ast.FunctionDef) -> None:
        doc = ast.get_docstring(node)
        if not doc:
            return
        head = doc.splitlines()[0].lower()
        if not any(w in head for w in COPY_WORDS):
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                if _returns_view(sub.value):
                    self._add(
                        sub.lineno,
                        "view-return",
                        f"{node.name!r} documents a copy but returns a "
                        "possible numpy view; add .copy()",
                    )


def lint_file(path: Path) -> list[LintFinding]:
    """Lint one Python file; unparseable files yield a single finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintFinding(
                str(path), exc.lineno or 0, "syntax", f"cannot parse: {exc}"
            )
        ]
    linter = _Linter(str(path), source)
    linter.visit(tree)
    return linter.findings


def lint_paths(paths: list[Path]) -> list[LintFinding]:
    """Lint every ``*.py`` under the given files/directories."""
    findings: list[LintFinding] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            findings.extend(lint_file(file))
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo = Path(__file__).resolve().parent.parent
    paths = [Path(a) for a in argv] or [repo / "src"]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.format())
    print(f"repro_lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
