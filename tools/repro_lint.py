#!/usr/bin/env python
"""Thin CI-compatibility shim over :mod:`repro.staticcheck.lint`.

The lint checks that used to live here are now rule modules in the
pluggable framework under ``src/repro/staticcheck/lint/`` — run them
with ``python -m repro lint`` (severities, suppression, baselines and
text/JSON/SARIF output live there).  This shim preserves the historical
entry points so existing CI invocations and imports keep working:

* ``python tools/repro_lint.py [paths...]`` — lint (default: ``src/``),
  print ``path:line: [rule] message`` lines and a count, exit 1 on any
  finding.  No baseline is applied: the old tool had none.
* ``from repro_lint import LintFinding, lint_file, lint_paths`` — the
  framework's engine functions; findings keep the legacy ``.check``
  attribute and ``format()`` rendering.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent

try:
    from repro.staticcheck.lint import LintFinding, lint_file, lint_paths
except ModuleNotFoundError:  # invoked without PYTHONPATH=src
    sys.path.insert(0, str(_REPO / "src"))
    from repro.staticcheck.lint import LintFinding, lint_file, lint_paths

__all__ = ["LintFinding", "lint_file", "lint_paths", "main"]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(a) for a in argv] or [_REPO / "src"]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.format())
    print(f"repro_lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
