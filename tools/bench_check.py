"""Validate and diff machine-readable bench records.

``benchmarks/conftest.py``'s ``bench_record`` fixture writes one
``BENCH_<name>.json`` per bench into ``benchmarks/results/`` following
the ``repro.bench/1`` schema::

    {
        "schema": "repro.bench/1",
        "name": "end_to_end",
        "params": {"qubits": 18, ...},
        "seconds": 1.23,
        "bytes": 45678,
        "metrics": {"swaps": 5, ...},
        "unix_time": 1700000000.0
    }

This tool checks every record against that schema and, when the
previous generation is present (``BENCH_<name>.json.prev``, kept by the
fixture), diffs the headline numbers.  For most benches regressions are
*warnings* — host timings in CI containers are noisy — but the guarded
benches in :data:`FAIL_ON_REGRESSION` (the headline kernel and
end-to-end numbers) FAIL the check when they slow down by more than
:data:`REGRESSION_THRESHOLD`.

Usage::

    python tools/bench_check.py [results_dir]

Exit status is non-zero for schema violations (malformed records) and
for guarded-bench performance regressions.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: Schema tag this checker understands (mirrors benchmarks/conftest.py).
BENCH_SCHEMA = "repro.bench/1"

#: Relative slowdown beyond which a regression note is emitted.
REGRESSION_THRESHOLD = 0.25

#: Benches whose >threshold slowdowns are ERRORS (exit 1), not warnings.
FAIL_ON_REGRESSION = {
    "kernels_autotune",
    "end_to_end",
    "runtime_overhead",
    "pipeline",
    "fusion",
    "plan_compile",
}

#: Bench names the repo's suites are known to emit.  A record with an
#: unregistered name is flagged as a warning — most likely a bench was
#: added without registering it here (or renamed without cleanup).
KNOWN_BENCHES = {
    "end_to_end",
    "exposition_overhead",
    "fusion",
    "kernels_autotune",
    "lint_runtime",
    "pipeline",
    "plan_compile",
    "recovery_overhead",
    "runtime_overhead",
    "sanitizer_overhead",
    "service_throughput",
    "table2_cori",
    "telemetry_overhead",
}

_REQUIRED_FIELDS = {
    "schema": str,
    "name": str,
    "params": dict,
    "seconds": (int, float),
    "bytes": int,
    "metrics": dict,
    "unix_time": (int, float),
}


def validate_record(record: object) -> list[str]:
    """Return a list of schema violations (empty when the record is valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    for field, types in _REQUIRED_FIELDS.items():
        if field not in record:
            errors.append(f"missing field {field!r}")
        elif not isinstance(record[field], types):
            errors.append(
                f"field {field!r} is {type(record[field]).__name__}, "
                f"expected {types.__name__ if isinstance(types, type) else 'number'}"
            )
    unknown = set(record) - set(_REQUIRED_FIELDS)
    if unknown:
        errors.append(f"unknown fields: {sorted(unknown)}")
    if not errors:
        if record["schema"] != BENCH_SCHEMA:
            errors.append(
                f"schema is {record['schema']!r}, expected {BENCH_SCHEMA!r}"
            )
        if isinstance(record["seconds"], bool) or record["seconds"] < 0:
            errors.append(f"seconds must be a non-negative number, got "
                          f"{record['seconds']!r}")
        elif not math.isfinite(record["seconds"]):
            errors.append(f"seconds must be finite, got {record['seconds']!r}")
        if isinstance(record["bytes"], bool) or record["bytes"] < 0:
            errors.append(f"bytes must be a non-negative int, got "
                          f"{record['bytes']!r}")
    return errors


def diff_records(
    current: dict, previous: dict
) -> tuple[list[str], list[str]]:
    """Compare a record against its previous generation.

    Returns ``(errors, warnings)`` as human-readable notes.  A seconds
    regression beyond :data:`REGRESSION_THRESHOLD` is an error for the
    guarded :data:`FAIL_ON_REGRESSION` benches and a warning otherwise;
    byte/param changes always warn.  Only headline fields are compared —
    metrics are free-form and bench-specific.
    """
    errors: list[str] = []
    notes: list[str] = []
    prev_s, cur_s = previous.get("seconds"), current.get("seconds")
    if (
        isinstance(prev_s, (int, float))
        and isinstance(cur_s, (int, float))
        and prev_s > 0
    ):
        rel = (cur_s - prev_s) / prev_s
        if rel > REGRESSION_THRESHOLD:
            note = (
                f"seconds regressed {prev_s:.4g} -> {cur_s:.4g} "
                f"(+{100 * rel:.0f}%)"
            )
            if current.get("name") in FAIL_ON_REGRESSION:
                errors.append(note + " [guarded bench]")
            else:
                notes.append(note)
    if previous.get("bytes") != current.get("bytes"):
        notes.append(
            f"bytes changed {previous.get('bytes')} -> {current.get('bytes')}"
        )
    if previous.get("params") != current.get("params"):
        notes.append(
            f"params changed {previous.get('params')} -> "
            f"{current.get('params')} (diff may not be like-for-like)"
        )
    return errors, notes


def check_results_dir(results_dir: Path) -> tuple[int, int]:
    """Validate every ``BENCH_*.json`` under *results_dir*.

    Prints findings and returns ``(num_errors, num_warnings)``.
    """
    errors = warnings = 0
    records = sorted(results_dir.glob("BENCH_*.json"))
    if not records:
        print(f"bench_check: no BENCH_*.json records in {results_dir}")
        return 0, 0
    for path in records:
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"ERROR {path.name}: unreadable ({exc})")
            errors += 1
            continue
        violations = validate_record(record)
        for violation in violations:
            print(f"ERROR {path.name}: {violation}")
        errors += len(violations)
        if violations:
            continue
        if record["name"] not in KNOWN_BENCHES:
            print(f"WARN  {path.name}: bench name {record['name']!r} not "
                  f"registered in KNOWN_BENCHES")
            warnings += 1
        prev_path = path.with_suffix(".json.prev")
        if prev_path.exists():
            try:
                previous = json.loads(prev_path.read_text())
            except (OSError, json.JSONDecodeError):
                print(f"WARN  {path.name}: previous record unreadable, "
                      f"skipping diff")
                warnings += 1
                continue
            diff_errors, diff_notes = diff_records(record, previous)
            for note in diff_errors:
                print(f"ERROR {path.name}: {note}")
                errors += 1
            for note in diff_notes:
                print(f"WARN  {path.name}: {note}")
                warnings += 1
            if diff_errors:
                continue
        print(f"ok    {path.name}: {record['name']} "
              f"({record['seconds']:.4g} s)")
    return errors, warnings


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
    results_dir = Path(argv[0]) if argv else default
    if not results_dir.is_dir():
        print(f"bench_check: results dir {results_dir} does not exist")
        return 0
    errors, warnings = check_results_dir(results_dir)
    if errors:
        print(f"bench_check: {errors} error(s) (schema or guarded-bench "
              f"regression), {warnings} warning(s)")
        return 1
    print(f"bench_check: all records valid ({warnings} warning(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
